"""Synthetic workloads.

The D-KASAN evaluation (section 4.2) "cloned a large project from a
Git repository and compiled it concurrently with light network traffic
(i.e., ICMP ping)". :func:`run_compile_and_ping` reproduces that mix:
a stream of short-lived kernel allocations from the code paths the
paper's Figure 3 names (``load_elf_phdrs``, ``sock_alloc_inode``,
``assoc_array_insert``, ...) interleaved with echo round-trips that
keep DMA mappings churning over the same slab and page_frag pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import faults
from repro.errors import OutOfMemoryError
from repro.mem.accounting import AllocSite
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.stack import ECHO_PORT

#: failures a real kernel path absorbs: allocation failure (the NULL
#: path) and a DMA mapping error injected by the fault engine
_RECOVERABLE = (OutOfMemoryError, faults.InjectedDmaMapError)

if TYPE_CHECKING:
    from repro.net.nic import Nic
    from repro.sim.kernel import Kernel

#: (size, allocating site) pairs modeled on Figure 3 and common
#: kernel paths exercised by an exec+compile workload.
COMPILE_ALLOC_SITES: tuple[tuple[int, AllocSite], ...] = (
    (512, AllocSite("load_elf_phdrs", 0xBF, 0x130)),
    (512, AllocSite("__do_execve_file.isra.0", 0x287, 0x1080)),
    (64, AllocSite("sock_alloc_inode", 0x4F, 0x120)),
    (328, AllocSite("assoc_array_insert", 0xA9, 0x7E0)),
    (256, AllocSite("getname_flags", 0x4F, 0x1E0)),
    (192, AllocSite("alloc_pipe_info", 0x66, 0x150)),
    (1024, AllocSite("seq_read", 0x9C, 0x4A0)),
    (96, AllocSite("single_open", 0x2E, 0xA0)),
)


@dataclass
class WorkloadStats:
    allocations: int = 0
    frees: int = 0
    pings: int = 0
    echoes: int = 0
    cpu_accesses: int = 0
    faults_recovered: int = 0


def pump_device(nic: "Nic", *, cpu: int = 0) -> int:
    """An honest device: fetch pending TX, complete, let kernel clean."""
    fetched = nic.device_fetch_tx(cpu=cpu, complete=True)
    nic.tx_clean(cpu=cpu)
    return len(fetched)


def run_compile_and_ping(kernel: "Kernel", nic: "Nic", *,
                         rounds: int = 40, cpu: int = 0) -> WorkloadStats:
    """Compile-like allocation churn under light echo traffic.

    The interleaving is what produces the paper's dynamic exposures:
    compile-path objects land on slab pages some of whose neighbours
    are DMA-mapped skb data buffers (alloc-after-map /
    map-after-alloc), the CPU touches mapped buffers while copying
    payloads (access-after-map), and TX fragments share page_frag
    pages with still-mapped RX buffers (multiple-map).
    """
    rng = kernel.rng.child("workload")
    stats = WorkloadStats()
    live: list[int] = []
    ctrl_maps: list[tuple[int, int]] = []  # (iova, kva) awaiting unmap
    for round_no in range(rounds):
        # A burst of compile-path allocations...
        for _ in range(rng.randint(2, 5)):
            size, site = rng.choice(COMPILE_ALLOC_SITES)
            try:
                kva = kernel.slab.kmalloc(size, cpu=cpu, site=site)
            except OutOfMemoryError:
                # the compile-path caller sees NULL and retries later
                stats.faults_recovered += 1
                continue
            # objects carry pointers (namespaces, ops tables), exactly
            # what makes their exposure dangerous
            kernel.cpu_write(kva, kernel.init_net_address()
                             .to_bytes(8, "little"), site=site)
            stats.allocations += 1
            stats.cpu_accesses += 1
            live.append(kva)
        # ...some frees (short object lifetimes)...
        while len(live) > 24:
            index = rng.randint(0, len(live) - 1)
            kernel.slab.kfree(live.pop(index))
            stats.frees += 1
        # ...a ping: small echo round trip...
        ping = make_packet(dst_ip=0x0A00_0001, dst_port=ECHO_PORT,
                           proto=PROTO_UDP, flow_id=0x1000 + round_no,
                           payload=b"ping-%03d" % round_no)
        try:
            if nic.device_receive(ping, cpu=cpu):
                stats.pings += 1
                nic.napi_poll(cpu=cpu)
                kernel.stack.process_backlog()
                stats.echoes += pump_device(nic, cpu=cpu)
        except _RECOVERABLE:
            # skb or echo allocation failed mid-delivery: the packet
            # is lost, the stack stays consistent
            stats.faults_recovered += 1
        # ...a periodic driver control command: a kmalloc-512 buffer is
        # DMA-mapped for a couple of rounds, exposing whatever
        # compile-path objects share its slab page (type (d))...
        if round_no % 4 == 1:
            try:
                ctrl_kva = kernel.slab.kmalloc(
                    448, cpu=cpu, site=AllocSite("mlx5_cmd_exec", 0x11C,
                                                 0x5B0))
            except OutOfMemoryError:
                ctrl_kva = None
                stats.faults_recovered += 1
            if ctrl_kva is not None:
                try:
                    iova = kernel.dma.dma_map_single(
                        nic.name, ctrl_kva, 448, "DMA_TO_DEVICE",
                        site=AllocSite("mlx5_cmd_exec", 0x148, 0x5B0))
                except faults.InjectedDmaMapError:
                    kernel.slab.kfree(ctrl_kva)
                    stats.faults_recovered += 1
                else:
                    ctrl_maps.append((iova, ctrl_kva))
        if len(ctrl_maps) > 2:
            iova, ctrl_kva = ctrl_maps.pop(0)
            kernel.dma.dma_unmap_single(nic.name, iova, 448,
                                        "DMA_TO_DEVICE")
            kernel.slab.kfree(ctrl_kva)
        # ...and occasionally a bulk send, whose payload copy touches a
        # page_frag page that may still back a mapped RX buffer.
        if round_no % 5 == 4:
            try:
                kernel.stack.send(b"B" * 1200, dst_ip=0x0A00_0002,
                                  nic=nic, flow_id=0x2000 + round_no,
                                  cpu=cpu)
            except _RECOVERABLE:
                stats.faults_recovered += 1
            pump_device(nic, cpu=cpu)
        kernel.advance_time_us(250.0)
    for iova, ctrl_kva in ctrl_maps:
        kernel.dma.dma_unmap_single(nic.name, iova, 448, "DMA_TO_DEVICE")
        kernel.slab.kfree(ctrl_kva)
    for kva in live:
        kernel.slab.kfree(kva)
        stats.frees += 1
    return stats


@dataclass
class ReplayStats:
    sites_replayed: int = 0
    maps: int = 0
    sub_page_maps: int = 0
    window_probes: int = 0
    windows_open: int = 0
    window_sites: dict = None  # "path:line" -> window observed open

    def __post_init__(self) -> None:
        if self.window_sites is None:
            self.window_sites = {}


def run_manifest_replay(kernel: "Kernel", manifest, *,
                        device_name: str = "camp0",
                        max_sites: int | None = None,
                        probe_windows: bool = False,
                        probe_delay_us: float = 250.0,
                        cpu: int = 0) -> ReplayStats:
    """Drive the kernel through every dma-map call site of a corpus
    manifest, so D-KASAN sees the same population SPADE analyzed.

    Each :class:`~repro.corpus.manifest.CallSiteTruth` is replayed as a
    page-sized slab object whose alloc site encodes the manifest
    identity (``path:line``); the mapping shape follows the site's
    ground-truth category:

    * vulnerable struct/skb/page_frag sites map a *sub-range* of the
      object, so the rest of the object is a co-located bystander on a
      device-visible page -- D-KASAN's ``map-after-alloc`` signal;
    * ``type_c`` sites additionally map a second overlapping window
      (page_frag chunk sharing), adding ``multiple-map``;
    * ``stack`` sites map the full page: the kernel stack is not an
      allocator-tracked object, so a runtime allocator sanitizer is
      structurally blind to them (SPADE-only territory);
    * benign sites map exactly their buffer, which is the one shape
      the DMA API makes safe at page granularity.

    Objects are unmapped and freed site-by-site, keeping replays
    independent of ordering and of physical page reuse.

    With ``probe_windows`` the replay additionally measures each
    site's post-unmap vulnerability window (Fig 6, per call site): the
    device touches the mapping while live (filling the IOTLB), then --
    ``probe_delay_us`` after the unmap -- probes whether the cached
    translation still answers. Strict invalidation closes every
    window; deferred invalidation leaves it open until the backend's
    flush timer drains. The probe uses the non-faulting
    :meth:`~repro.iommu.iommu.Iommu.device_can_access` path, so it
    perturbs no D-KASAN verdicts; the clock advance is what lets
    backend-specific flush cadences produce *different* per-site
    window maps -- the cross-backend disagreement signal.
    """
    from repro.errors import IommuFault
    from repro.mem.phys import PAGE_SIZE

    kernel.iommu.attach_device(device_name)
    stats = ReplayStats()
    for site in manifest.sites:
        if max_sites is not None and stats.sites_replayed >= max_sites:
            break
        alloc_site = AllocSite(f"{site.path}:{site.line}")
        kva = kernel.slab.kmalloc(PAGE_SIZE, cpu=cpu, site=alloc_site)
        windows: list[tuple[int, int]] = []
        dynamic_visible = site.vulnerable \
            and site.exposures != frozenset({"stack"})
        if dynamic_visible:
            windows.append((kva + PAGE_SIZE // 4, PAGE_SIZE // 4))
            stats.sub_page_maps += 1
            if "type_c" in site.exposures:
                windows.append((kva + PAGE_SIZE // 2, PAGE_SIZE // 4))
        else:
            windows.append((kva, PAGE_SIZE))
        iovas = []
        for map_kva, map_len in windows:
            iovas.append((kernel.dma.dma_map_single(
                device_name, map_kva, map_len, "DMA_FROM_DEVICE",
                site=alloc_site), map_len))
            stats.maps += 1
        if probe_windows:
            # Warm the IOTLB: translations are cached on use, not at
            # map time, and a stale window needs a cached entry.
            try:
                kernel.iommu.device_write(device_name, iovas[0][0],
                                          b"\x00" * 8)
            except IommuFault:
                pass
        for iova, map_len in iovas:
            kernel.dma.dma_unmap_single(device_name, iova, map_len,
                                        "DMA_FROM_DEVICE")
        if probe_windows:
            kernel.advance_time_us(probe_delay_us)
            open_ = kernel.iommu.device_can_access(
                device_name, iovas[0][0], write=True)
            stats.window_probes += 1
            stats.windows_open += open_
            stats.window_sites[f"{site.path}:{site.line}"] = open_
        kernel.slab.kfree(kva)
        stats.sites_replayed += 1
    return stats


@dataclass
class StorageWorkloadStats:
    commands: int = 0
    bytes_transferred: int = 0
    faults_recovered: int = 0


def run_storage_workload(kernel: "Kernel", *, device_name: str = "nvme0",
                         commands: int = 48,
                         cpu: int = 0) -> StorageWorkloadStats:
    """An NVMe-flavoured command loop: per-command struct-embedded
    response buffers (the nvme_fc pattern of Figure 2) plus bulk data
    pages, all mapped and unmapped at I/O rate.

    Useful as a second D-KASAN scenario: the command structs are
    kmalloc'd alongside ordinary kernel objects, so their DMA mappings
    generate map-after-alloc/alloc-after-map churn in the 512-byte
    cache that the network workload barely touches.
    """
    kernel.iommu.attach_device(device_name)
    rng = kernel.rng.child("storage-workload")
    stats = StorageWorkloadStats()
    inflight: list[tuple[int, int, int, int]] = []
    for index in range(commands):
        # the command struct: embedded response area (type (a) pattern)
        try:
            cmd_kva = kernel.slab.kmalloc(
                384, cpu=cpu, site=AllocSite("nvme_fc_init_iod", 0x84,
                                             0x2E0))
        except OutOfMemoryError:
            # BLK_STS_RESOURCE: the block layer requeues the request
            stats.faults_recovered += 1
            kernel.advance_time_us(80.0)
            continue
        try:
            rsp_iova = kernel.dma.dma_map_single(
                device_name, cmd_kva + 128, 128, "DMA_FROM_DEVICE",
                site=AllocSite("nvme_fc_map_data", 0x99, 0x260))
        except faults.InjectedDmaMapError:
            kernel.slab.kfree(cmd_kva)
            stats.faults_recovered += 1
            kernel.advance_time_us(80.0)
            continue
        # the data page
        direction = rng.choice(["DMA_TO_DEVICE", "DMA_FROM_DEVICE"])
        data_kva = None
        try:
            data_kva = kernel.slab.kmalloc(
                4096, cpu=cpu, site=AllocSite("blk_mq_get_request",
                                              0x14A, 0x3D0))
            data_iova = kernel.dma.dma_map_single(
                device_name, data_kva, 4096, direction,
                site=AllocSite("nvme_map_data", 0x6B, 0x2A0))
        except _RECOVERABLE:
            # unwind the half-built command and requeue
            if data_kva is not None:
                kernel.slab.kfree(data_kva)
            kernel.dma.dma_unmap_single(device_name, rsp_iova, 128,
                                        "DMA_FROM_DEVICE")
            kernel.slab.kfree(cmd_kva)
            stats.faults_recovered += 1
            kernel.advance_time_us(80.0)
            continue
        if direction == "DMA_TO_DEVICE":
            kernel.iommu.device_read(device_name, data_iova, 4096)
        else:
            kernel.iommu.device_write(device_name, data_iova,
                                      bytes(512))
        kernel.iommu.device_write(device_name, rsp_iova, b"\x00" * 16)
        inflight.append((rsp_iova, cmd_kva, data_iova, data_kva,
                         direction))
        stats.commands += 1
        stats.bytes_transferred += 4096
        # complete the oldest command once a small queue depth builds
        if len(inflight) > 4:
            rsp, cmd, dio, dkva, dma_dir = inflight.pop(0)
            kernel.dma.dma_unmap_single(device_name, rsp, 128,
                                        "DMA_FROM_DEVICE")
            kernel.dma.dma_unmap_single(device_name, dio, 4096, dma_dir)
            kernel.slab.kfree(cmd)
            kernel.slab.kfree(dkva)
        kernel.advance_time_us(80.0)
    for rsp, cmd, dio, dkva, dma_dir in inflight:
        kernel.dma.dma_unmap_single(device_name, rsp, 128,
                                    "DMA_FROM_DEVICE")
        kernel.dma.dma_unmap_single(device_name, dio, 4096, dma_dir)
        kernel.slab.kfree(cmd)
        kernel.slab.kfree(dkva)
    return stats
