"""repro.trace -- the kernel-wide flight recorder.

An ftrace/perf-style tracing layer over the whole simulation: the DMA
API, the IOMMU (IOTLB and flush queue), the network rings, the
allocators, D-KASAN, and the attacks all carry tracepoints that emit
typed events into one bounded ring buffer, stamped from the simulated
clock.

**Tracing is disabled by default and costs almost nothing when off.**
Instrumented call sites guard with :func:`enabled`, which is a single
module-global ``None`` check; no recorder object, no event allocation,
no clock read happens until one is installed:

    from repro import trace

    recorder = trace.install(trace.TraceRecorder(
        categories=("iommu", "dma")))
    ...           # run a workload / attack
    trace.uninstall()
    for event in recorder.events:
        print(event)

or, scoped::

    with trace.session(categories=("iommu",)) as recorder:
        ...

Importing this module (or any instrumented module) has no side
effects: no recorder is installed, no state is created beyond the
module itself. The CI no-op step pins that property.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.errors import TraceError
from repro.trace.analysis import (InvalidationWindows,
                                  derive_invalidation_windows,
                                  event_counts, stale_access_count)
from repro.trace.export import (chrome_trace, dump_chrome_trace,
                                dump_jsonl, load_jsonl, summary_record,
                                write_jsonl)
from repro.trace.recorder import (CATEGORIES, DEFAULT_CAPACITY, Histogram,
                                  Span, TraceEvent, TraceRecorder)

__all__ = [
    "CATEGORIES", "DEFAULT_CAPACITY", "Histogram", "InvalidationWindows",
    "Span", "TraceError", "TraceEvent", "TraceRecorder", "active",
    "bind_clock", "chrome_trace", "count", "derive_invalidation_windows",
    "active_categories", "dump_chrome_trace", "dump_jsonl", "emit",
    "enabled", "event_counts",
    "install", "last_seq", "load_jsonl", "observe", "session", "span",
    "stale_access_count", "summary_record", "unbind_clock", "uninstall",
    "write_jsonl",
]

#: The installed recorder. ``None`` (the default) means tracing is off
#: and every hook below is a near-zero-cost no-op.
_active: TraceRecorder | None = None

_NO_CATEGORIES: frozenset = frozenset()

#: The categories the installed recorder wants -- empty when tracing is
#: off. This is module *data*, not a function, so per-event hot loops
#: can hoist ``trace.active_categories`` into a local once and pay one
#: O(1) membership test per event instead of a function call (the
#: :func:`enabled` predicate must never be re-evaluated per event in a
#: loop whose recorder cannot change mid-loop).
active_categories: frozenset = _NO_CATEGORIES


def install(recorder: TraceRecorder) -> TraceRecorder:
    """Install *recorder* as the process-wide flight recorder."""
    global _active, active_categories
    if _active is not None:
        raise TraceError("a trace recorder is already installed")
    _active = recorder
    wanted = recorder.categories
    active_categories = frozenset(CATEGORIES) if wanted is None \
        else wanted
    return recorder


def uninstall() -> TraceRecorder | None:
    """Remove (and return) the installed recorder, if any."""
    global _active, active_categories
    recorder, _active = _active, None
    active_categories = _NO_CATEGORIES
    return recorder


def active() -> TraceRecorder | None:
    """The installed recorder, or None when tracing is disabled."""
    return _active


@contextmanager
def session(**kwargs):
    """Install a fresh :class:`TraceRecorder` for the ``with`` body."""
    recorder = install(TraceRecorder(**kwargs))
    try:
        yield recorder
    finally:
        uninstall()


# -- hot-path hooks (the no-op guard) -------------------------------------
#
# Instrumented sites call ``trace.enabled(cat)`` before building event
# arguments, so a disabled trace costs one global read and one function
# call per tracepoint -- the <5% bench-overhead budget.

def enabled(category: str) -> bool:
    """True when a recorder is installed and wants *category*."""
    return category in active_categories


def emit(category: str, name: str, **args):
    """Record one instant event (no-op when tracing is off)."""
    recorder = _active
    if recorder is None:
        return None
    return recorder.emit(category, name, **args)


def span(category: str, name: str, **args):
    """Context manager tracing a begin/end span (no-op when off)."""
    recorder = _active
    if recorder is None:
        return _NULL_SPAN
    return recorder.span(category, name, **args)


def count(category: str, name: str, delta: int = 1) -> None:
    recorder = _active
    if recorder is not None:
        recorder.count(category, name, delta)


def observe(category: str, name: str, value: float) -> None:
    recorder = _active
    if recorder is not None:
        recorder.observe(category, name, value)


def last_seq() -> int | None:
    recorder = _active
    return recorder.last_seq() if recorder is not None else None


def bind_clock(clock) -> None:
    """Bind the installed recorder (if any) to *clock*."""
    recorder = _active
    if recorder is not None:
        recorder.bind_clock(clock)


def unbind_clock() -> None:
    """Detach the installed recorder from its clock, if any.

    Long-lived processes (the ``repro-dma serve`` daemon) call this
    between requests so a recorder never keeps stamping events from a
    finished request's kernel: the next boot re-binds explicitly
    instead of inheriting a stale time base (events stamp 0.0 until
    then).
    """
    recorder = _active
    if recorder is not None:
        recorder.bind_clock(None)


class _NullSpanContext:
    """Shared do-nothing span for the disabled-tracing path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpanContext()
