"""Trace analysis: derive the paper's quantities from the event stream.

The flagship derivation recomputes the **deferred-invalidation window**
(Fig. 6/7) from the flight recorder alone: every ``iommu/fq_defer``
event marks a page-table entry whose IOTLB shadow is still live, and
the next ``iommu/fq_drain`` marks the global flush that finally kills
it. The gap *is* the paper's "~10 ms window" -- measured from the
trace, not from hand-placed counters, so any instrumentation drift
between the two measurement paths is caught by the benchmark fixture
that compares them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.recorder import TraceEvent


@dataclass
class InvalidationWindows:
    """Per-unmap stale-translation windows derived from a trace."""

    windows_us: list[float] = field(default_factory=list)
    nr_unpaired: int = 0        # defers with no drain in the trace
    nr_sync: int = 0            # strict-mode synchronous invalidations

    @property
    def nr_windows(self) -> int:
        return len(self.windows_us)

    @property
    def max_us(self) -> float:
        return max(self.windows_us, default=0.0)

    @property
    def mean_us(self) -> float:
        if not self.windows_us:
            return 0.0
        return sum(self.windows_us) / len(self.windows_us)

    @property
    def max_ms(self) -> float:
        return self.max_us / 1000.0

    @property
    def mean_ms(self) -> float:
        return self.mean_us / 1000.0


def derive_invalidation_windows(events: Iterable[TraceEvent]
                                ) -> InvalidationWindows:
    """Pair each flush-queue defer with the drain that retired it.

    A ``fq_drain`` retires *every* pending defer (the Linux flush queue
    performs one global invalidation per batch), so all queued defers
    close at the drain timestamp. Strict-mode ``inv_sync`` events count
    as zero-width windows -- after a synchronous invalidation the
    device has no residual access.
    """
    result = InvalidationWindows()
    pending: list[float] = []
    for event in events:
        if event.category != "iommu":
            continue
        if event.name == "fq_defer":
            pending.append(event.ts_us)
        elif event.name == "fq_drain":
            result.windows_us.extend(event.ts_us - ts for ts in pending)
            pending.clear()
        elif event.name == "inv_sync":
            result.nr_sync += 1
            result.windows_us.append(0.0)
    result.nr_unpaired = len(pending)
    return result


def stale_access_count(events: Iterable[TraceEvent]) -> int:
    """Device accesses translated through an already-unmapped entry."""
    return sum(1 for event in events
               if event.category == "iommu"
               and event.name == "stale_hit")


def event_counts(events: Iterable[TraceEvent]) -> Counter:
    """(category, name) -> occurrences, for summaries and tests."""
    return Counter((event.category, event.name) for event in events)
