"""Trace exporters: JSONL and Chrome ``chrome://tracing`` JSON.

The JSONL stream is the machine-readable format: one event object per
line, followed by one ``type: "summary"`` line carrying the dropped
count, counters, and histograms. Events serialize with sorted keys, so
two runs with the same seeds produce byte-identical files -- the
property the determinism tests pin.

The Chrome export produces the trace-event JSON schema that
``chrome://tracing`` / Perfetto load directly: instant events ("i"),
span begin/end pairs ("B"/"E"), counter samples ("C"), and "M"
metadata rows naming one virtual thread per category.
"""

from __future__ import annotations

import json
import warnings
from typing import IO, Iterable

from repro.trace.recorder import CATEGORIES, TraceEvent, TraceRecorder


def summary_record(recorder: TraceRecorder) -> dict:
    """The aggregate JSONL trailer line."""
    return {
        "type": "summary",
        "nr_events": recorder.nr_events,
        "nr_emitted": recorder.nr_emitted,
        "dropped": recorder.dropped,
        "counters": {f"{cat}/{name}": value for (cat, name), value
                     in sorted(recorder.counters.items())},
        "histograms": {f"{cat}/{name}": hist.to_json()
                       for (cat, name), hist
                       in sorted(recorder.histograms.items())},
    }


def write_jsonl(recorder: TraceRecorder, stream: IO[str]) -> int:
    """Write every retained event plus the summary line; returns the
    number of event lines written."""
    written = 0
    for event in recorder.events:
        record = dict(event.to_json(), type="event")
        stream.write(json.dumps(record, sort_keys=True) + "\n")
        written += 1
    stream.write(json.dumps(summary_record(recorder), sort_keys=True)
                 + "\n")
    return written


def dump_jsonl(recorder: TraceRecorder, path: str) -> int:
    with open(path, "w", encoding="utf-8") as handle:
        return write_jsonl(recorder, handle)


def load_jsonl(path: str) -> tuple[list[TraceEvent], dict | None]:
    """Read a JSONL trace back into (events, summary-or-None).

    A **torn trailing line** -- the writer crashed mid-append, so the
    last line is not complete JSON -- is healed instead of raised: the
    partial record is dropped with one :class:`UserWarning` naming its
    byte offset, the same tolerance the campaign's JSONL resume
    applies to its results file. Corruption anywhere *before* the
    final line still raises, because that means lost interior events,
    not an interrupted append.
    """
    events: list[TraceEvent] = []
    summary = None
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    offset = 0
    for index, raw in enumerate(lines):
        line = raw.strip()
        if line:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                trailing = all(not rest.strip()
                               for rest in lines[index + 1:])
                if not trailing:
                    raise
                warnings.warn(
                    f"{path}: dropped torn trailing line at byte "
                    f"{offset} ({len(raw.encode('utf-8'))} bytes); "
                    f"the trace was interrupted mid-append")
                break
            if record.get("type") == "summary":
                summary = record
            else:
                events.append(TraceEvent.from_json(record))
        offset += len(raw.encode("utf-8"))
    return events, summary


def chrome_trace(events: Iterable[TraceEvent], *,
                 counters: dict | None = None,
                 process_name: str = "repro-dma") -> dict:
    """Build a ``chrome://tracing`` trace-event JSON document.

    Each category gets its own virtual thread (tid) so spans and
    instants group into per-subsystem rows; timestamps are already in
    microseconds, the unit the schema expects.
    """
    tids = {category: index + 1
            for index, category in enumerate(CATEGORIES)}
    trace_events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": process_name}},
    ]
    used = sorted({event.category for event in events},
                  key=lambda c: tids[c])
    for category in used:
        trace_events.append(
            {"name": "thread_name", "ph": "M", "pid": 1,
             "tid": tids[category], "args": {"name": category}})
    for event in events:
        record = {"name": event.name, "cat": event.category,
                  "ph": event.phase, "ts": round(event.ts_us, 6),
                  "pid": 1, "tid": tids[event.category],
                  "args": dict(event.args)}
        if event.phase == "i":
            record["s"] = "t"  # thread-scoped instant
        trace_events.append(record)
    last_ts = max((event.ts_us for event in events), default=0.0)
    for (category, name), value in sorted((counters or {}).items()):
        trace_events.append(
            {"name": name, "cat": category, "ph": "C",
             "ts": round(last_ts, 6), "pid": 1, "tid": tids[category],
             "args": {"value": value}})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def dump_chrome_trace(recorder: TraceRecorder, path: str) -> int:
    """Write the Chrome trace JSON; returns the number of traceEvents."""
    document = chrome_trace(recorder.events, counters=recorder.counters)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])
