"""The flight recorder: a bounded ring of typed tracepoint events.

Every event is stamped from the simulated clock (:class:`SimClock`), so
a trace is a pure function of the experiment seed -- two runs with the
same seeds produce byte-identical JSONL streams. The ring drops its
*oldest* events under pressure (and counts the drops), which keeps
memory O(capacity) even when a RingFlood-scale workload emits millions
of tracepoints: the recorder behaves like a hardware flight recorder,
always holding the most recent history.

Besides raw events, the recorder aggregates:

* **spans** -- nested begin/end pairs for latency attribution (rendered
  as "B"/"E" phases, Chrome-trace style);
* **counters** -- monotonic per-(category, name) tallies;
* **histograms** -- power-of-two bucketed value distributions, for
  rates and latency spreads without storing every sample.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import TraceError

#: Every tracepoint category the instrumented layers emit.  Unknown
#: categories are rejected at emit time so filters cannot silently
#: miss a misspelled subsystem.
CATEGORIES = ("dma", "iommu", "net", "mem", "dkasan", "attack", "sim",
              "fault", "durability")

#: Default ring capacity: enough for the full Fig. 6/7 benches while
#: staying a few MiB even with verbose args.
DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class TraceEvent:
    """One recorded tracepoint.

    ``phase`` follows the Chrome trace-event convention: ``"i"`` for an
    instant event, ``"B"``/``"E"`` for span begin/end.
    """

    seq: int
    ts_us: float
    category: str
    name: str
    phase: str = "i"
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"seq": self.seq, "ts_us": round(self.ts_us, 6),
                "cat": self.category, "name": self.name,
                "ph": self.phase, "args": self.args}

    @classmethod
    def from_json(cls, record: dict) -> "TraceEvent":
        return cls(record["seq"], record["ts_us"], record["cat"],
                   record["name"], record.get("ph", "i"),
                   dict(record.get("args", {})))


@dataclass
class Histogram:
    """Power-of-two bucketed distribution (ftrace ``hist:`` style).

    Bucket *i* counts values in ``[2**(i-1), 2**i)``; bucket 0 counts
    values < 1 (including 0 and negatives, which a simulated latency
    should never produce but a buggy caller might).
    """

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = 0
        if value >= 1:
            index = int(value).bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_json(self) -> dict:
        return {"count": self.count, "total": round(self.total, 6),
                "min": self.min, "max": self.max, "mean": round(self.mean, 6),
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


class Span:
    """Handle for an open span; close via the recorder (or ``with``)."""

    __slots__ = ("category", "name", "begin_seq", "begin_ts_us", "closed")

    def __init__(self, category: str, name: str, begin_seq: int,
                 begin_ts_us: float) -> None:
        self.category = category
        self.name = name
        self.begin_seq = begin_seq
        self.begin_ts_us = begin_ts_us
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return f"<Span {self.category}/{self.name} {state}>"


class _SpanContext:
    """``with recorder.span(...)`` helper (no-op when filtered out)."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: "TraceRecorder | None",
                 span: Span | None) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span | None:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._recorder is not None and self._span is not None:
            self._recorder.end(self._span)


class TraceRecorder:
    """Bounded, category-filtered, deterministically stamped recorder.

    ``categories=None`` records everything; otherwise only the named
    categories are kept (the rest are no-ops, including their counters
    and histograms). The clock may be bound after construction --
    :class:`repro.sim.kernel.Kernel` binds its own clock at boot when a
    recorder is installed, so events are stamped in that kernel's
    simulated time.
    """

    def __init__(self, *, capacity: int = DEFAULT_CAPACITY,
                 categories=None, clock=None) -> None:
        if capacity <= 0:
            raise TraceError(f"bad trace capacity {capacity}")
        unknown = set(categories or ()) - set(CATEGORIES)
        if unknown:
            raise TraceError(
                f"unknown trace categories: {', '.join(sorted(unknown))} "
                f"(valid: {', '.join(CATEGORIES)})")
        self.capacity = capacity
        self._categories = frozenset(categories) if categories else None
        self._clock = clock
        self._events: deque[TraceEvent] = deque()
        self._next_seq = 0
        self.dropped = 0
        self._span_stack: list[Span] = []
        self.counters: dict[tuple[str, str], int] = {}
        self.histograms: dict[tuple[str, str], Histogram] = {}
        self._observers: list = []

    # -- configuration ------------------------------------------------------

    def wants(self, category: str) -> bool:
        return self._categories is None or category in self._categories

    @property
    def categories(self) -> frozenset | None:
        return self._categories

    def bind_clock(self, clock) -> None:
        """Stamp subsequent events from *clock* (a ``SimClock``)."""
        self._clock = clock

    @property
    def now_us(self) -> float:
        return self._clock.now_us if self._clock is not None else 0.0

    # -- observers ----------------------------------------------------------

    def add_observer(self, fn) -> None:
        """Stream every subsequently emitted event into *fn(event)*.

        Observers see events **before** the drop-oldest ring can evict
        them, so a streaming consumer (the coverage collector) is
        independent of the ring capacity. Observers must not emit.
        """
        self._observers.append(fn)

    def remove_observer(self, fn) -> None:
        try:
            self._observers.remove(fn)
        except ValueError:
            pass

    # -- events -------------------------------------------------------------

    def emit(self, category: str, name: str, *, phase: str = "i",
             **args) -> TraceEvent | None:
        """Record one event; returns None when the category is filtered."""
        if category not in CATEGORIES:
            raise TraceError(f"unknown trace category {category!r}")
        if not self.wants(category):
            return None
        event = TraceEvent(self._next_seq, self.now_us, category, name,
                           phase, args)
        self._next_seq += 1
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)
        if self._observers:
            for observer in self._observers:
                observer(event)
        return event

    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    @property
    def nr_events(self) -> int:
        return len(self._events)

    @property
    def nr_emitted(self) -> int:
        """Events ever emitted, including those the ring dropped."""
        return self._next_seq

    def last_seq(self) -> int | None:
        """Sequence number of the most recent event, if any."""
        return self._events[-1].seq if self._events else None

    def tail(self, n: int) -> list[TraceEvent]:
        """The last *n* retained events, oldest first."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    # -- spans --------------------------------------------------------------

    def begin(self, category: str, name: str, **args) -> Span | None:
        """Open a span; returns None when the category is filtered."""
        event = self.emit(category, name, phase="B", **args)
        if event is None:
            return None
        span = Span(category, name, event.seq, event.ts_us)
        self._span_stack.append(span)
        return span

    def end(self, span: Span) -> TraceEvent | None:
        """Close *span*; spans must close in LIFO order."""
        if span.closed:
            raise TraceError(
                f"span {span.category}/{span.name} closed twice")
        if not self._span_stack:
            raise TraceError(
                f"closing span {span.category}/{span.name} "
                f"with no span open")
        top = self._span_stack[-1]
        if top is not span:
            raise TraceError(
                f"mismatched span close: closing {span.category}/"
                f"{span.name} while {top.category}/{top.name} is open")
        self._span_stack.pop()
        span.closed = True
        return self.emit(span.category, span.name, phase="E",
                         dur_us=round(self.now_us - span.begin_ts_us, 6))

    def span(self, category: str, name: str, **args) -> _SpanContext:
        """``with recorder.span("attack", "kaslr-break"): ...``"""
        return _SpanContext(self, self.begin(category, name, **args))

    @property
    def open_spans(self) -> int:
        return len(self._span_stack)

    # -- aggregates ---------------------------------------------------------

    def count(self, category: str, name: str, delta: int = 1) -> None:
        """Bump a monotonic counter (no ring-buffer traffic)."""
        if not self.wants(category):
            return
        key = (category, name)
        self.counters[key] = self.counters.get(key, 0) + delta

    def observe(self, category: str, name: str, value: float) -> None:
        """Record one sample into a pow-2 bucketed histogram."""
        if not self.wants(category):
            return
        key = (category, name)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)
