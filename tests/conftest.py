"""Shared fixtures.

Expensive artifacts (the generated corpus, the parsed SPADE index) are
session-scoped: they are deterministic, so sharing them across tests
loses nothing.
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusGenerator
from repro.sim.kernel import Kernel


@pytest.fixture()
def kernel() -> Kernel:
    """A small, deterministic victim kernel with one NIC."""
    k = Kernel(seed=7, phys_mb=256, boot_jitter_pages=0,
               boot_jitter_blocks=0)
    k.add_nic("eth0")
    return k


@pytest.fixture()
def bare_kernel() -> Kernel:
    """A kernel without NICs, for allocator/IOMMU-level tests."""
    return Kernel(seed=7, phys_mb=256, boot_jitter_pages=0,
                  boot_jitter_blocks=0)


@pytest.fixture(scope="session")
def corpus():
    """(tree, manifest) of the full Linux-5.0-shaped corpus."""
    return CorpusGenerator(seed=2021).generate()


@pytest.fixture(scope="session")
def spade_results(corpus):
    """(spade, findings) over the session corpus."""
    from repro.core.spade import Spade

    tree, _manifest = corpus
    spade = Spade(tree)
    return spade, spade.analyze()
