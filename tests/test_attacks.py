"""End-to-end attacks: single-step, RingFlood, Poisoned TX, Forward
Thinking, surveillance, blinding bypass."""

import pytest

from repro.core.attacks.blinding_bypass import run_blinding_bypass
from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.forward import run_forward_thinking
from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.payload import (UBUF_PAYLOAD_SIZE,
                                        blob_callback_value,
                                        build_attack_blob)
from repro.core.attacks.poisoned_tx import run_poisoned_tx
from repro.core.attacks.ringflood import (make_attacker,
                                          profile_replica_boots,
                                          run_ringflood)
from repro.core.attacks.singlestep import LegacyCmdDriver, run_single_step
from repro.core.attacks.surveillance import read_arbitrary_pages
from repro.errors import AttackFailed
from repro.sim.kernel import Kernel


def make_victim(**kwargs):
    kwargs.setdefault("seed", 23)
    kwargs.setdefault("boot_index", 5)
    kwargs.setdefault("phys_mb", 512)
    victim = Kernel(**kwargs)
    nic = victim.add_nic("eth0")
    return victim, nic, make_attacker(victim, "eth0")


def test_attacker_knowledge_from_public_build():
    kernel = Kernel(seed=23, phys_mb=128)
    knowledge = AttackerKnowledge.from_public_build(kernel.image)
    assert knowledge.pivot_const == 0x10
    assert "init_net" in knowledge.symbol_offsets
    assert not knowledge.kaslr_broken
    with pytest.raises(AttackFailed):
        knowledge.symbol_kva("commit_creds")


def test_payload_requires_broken_kaslr():
    kernel = Kernel(seed=23, phys_mb=128)
    knowledge = AttackerKnowledge.from_public_build(kernel.image)
    with pytest.raises(AttackFailed):
        build_attack_blob(knowledge)


def test_payload_layout():
    kernel = Kernel(seed=23, phys_mb=128)
    knowledge = AttackerKnowledge.from_public_build(kernel.image)
    knowledge.text_base = kernel.addr_space.text_base
    blob = build_attack_blob(knowledge)
    assert len(blob) == UBUF_PAYLOAD_SIZE
    assert blob_callback_value(blob) == knowledge.gadget_kva("pivot")


def test_kaslr_break_via_tx_leaks():
    """Stage 1 of every compound attack: exact slide recovery."""
    victim, nic, device = make_victim()
    assert break_kaslr_via_tx(victim, nic, device)
    assert device.knowledge.text_base == victim.addr_space.text_base
    assert device.knowledge.page_offset_base == \
        victim.addr_space.page_offset_base


def test_single_step_attack():
    victim, _nic, _dev = make_victim()
    driver = LegacyCmdDriver(victim)
    device = make_attacker(victim, "fw0")
    report = run_single_step(victim, driver, device)
    assert report.escalated
    assert report.attributes.complete
    assert victim.executor.creds.is_root


def test_ringflood_attack():
    profile = profile_replica_boots(30, seed=23, nr_slots=16)
    victim, nic, device = make_victim()
    report = run_ringflood(victim, nic, device, profile, nr_slots=16)
    assert report.slots_flooded > 0
    assert report.slots_hijacked > 0
    if report.correct_pfn_guesses:
        assert report.escalated
        assert victim.executor.creds.is_root
    assert victim.stack.stats.oopses == 0


def test_ringflood_depends_on_pfn_profile_quality():
    """A replica with a mismatched configuration (different page_frag
    chunk order => different physical layout) yields wrong guesses.

    Note a replica with merely a different *seed* often still guesses
    right: boot layouts depend mostly on configuration, not identity --
    which is the paper's whole point about deterministic boots.
    """
    bad_profile = profile_replica_boots(
        5, seed=23, nr_slots=4,
        kernel_config={"page_frag_chunk_order": 2, "phys_mb": 512})
    victim, nic, device = make_victim()
    report = run_ringflood(victim, nic, device, bad_profile, nr_slots=4)
    assert report.correct_pfn_guesses == 0
    assert not report.escalated


def test_poisoned_tx_attack():
    victim, nic, device = make_victim()
    report = run_poisoned_tx(victim, nic, device)
    assert report.escalated
    assert report.ubuf_kva is not None
    # the blob KVA was derived from the leaked struct page, and it is
    # correct: the chain only fires if the pointer was exact
    assert victim.executor.creds.is_root
    assert victim.stack.stats.oopses == 0
    assert report.attributes.complete


def test_poisoned_tx_needs_no_boot_profile():
    """Distinguishing property vs RingFlood (section 5.4): no prior
    knowledge of the physical setup."""
    victim, nic, device = make_victim(boot_index=12345)
    report = run_poisoned_tx(victim, nic, device)
    assert report.escalated


def test_forward_thinking_attack():
    victim, nic, device = make_victim(forwarding=True)
    report = run_forward_thinking(victim, nic, device)
    assert report.escalated
    assert victim.executor.creds.is_root
    assert victim.stack.stats.oopses == 0


def test_forward_thinking_requires_forwarding():
    victim, nic, device = make_victim(forwarding=False)
    report = run_forward_thinking(victim, nic, device)
    assert not report.escalated
    assert "does not forward" in report.stage_log[0]


def test_surveillance_reads_arbitrary_pages():
    victim, nic, device = make_victim(forwarding=True)
    assert break_kaslr_via_tx(victim, nic, device)
    if device.knowledge.vmemmap_base is None:
        device.knowledge.vmemmap_base = victim.addr_space.vmemmap_base
    secret_kva = victim.slab.kmalloc(64)
    victim.cpu_write(secret_kva, b"TOP-SECRET-BYTES")
    pfn = victim.addr_space.pfn_of_kva(secret_kva)
    report = read_arbitrary_pages(victim, nic, device, [pfn])
    assert b"TOP-SECRET-BYTES" in report.pages_read[pfn]
    assert report.undone
    assert victim.stack.stats.oopses == 0


def test_surveillance_without_undo_crashes_victim():
    """Section 5.5's stability requirement, demonstrated."""
    victim, nic, device = make_victim(forwarding=True)
    assert break_kaslr_via_tx(victim, nic, device)
    if device.knowledge.vmemmap_base is None:
        device.knowledge.vmemmap_base = victim.addr_space.vmemmap_base
    read_arbitrary_pages(victim, nic, device, [300], undo=False)
    assert victim.stack.stats.oopses >= 1


def test_surveillance_needs_vmemmap():
    victim, nic, device = make_victim(forwarding=True)
    with pytest.raises(AttackFailed):
        read_arbitrary_pages(victim, nic, device, [300])


def test_surveillance_frag_limit():
    victim, nic, device = make_victim(forwarding=True)
    device.knowledge.vmemmap_base = victim.addr_space.vmemmap_base
    with pytest.raises(AttackFailed):
        read_arbitrary_pages(victim, nic, device, list(range(20)))


def test_blinding_bypass():
    victim = Kernel(seed=23, boot_index=5, phys_mb=512, forwarding=True,
                    pointer_blinding=True, zerocopy_threshold=512)
    nic = victim.add_nic("eth0")
    device = make_attacker(victim, "eth0")
    report = run_blinding_bypass(victim, nic, device)
    assert report.cookie_recovered == \
        victim.stack.pointer_blinding.cookie_for_test()
    assert report.escalated
    assert victim.stack.stats.oopses == 0


def test_blinding_without_bypass_blocks():
    """The naked hijack fails against blinding (oops, no escalation)."""
    victim = Kernel(seed=23, boot_index=5, phys_mb=512,
                    pointer_blinding=True)
    nic = victim.add_nic("eth0")
    device = make_attacker(victim, "eth0")
    report = run_poisoned_tx(victim, nic, device)
    assert not report.escalated
    assert victim.stack.stats.oopses >= 1


def test_attack_is_dma_only():
    """Threat-model check: the attack used only device DMA (plus the
    public build); every access went through the IOMMU."""
    victim, nic, device = make_victim()
    run_poisoned_tx(victim, nic, device)
    assert device.dma_reads > 0 and device.dma_writes > 0
    assert victim.iommu.stats.device_reads >= device.dma_reads
