"""repro.backends: registry, IOTLB geometry, and the intel-vtd
no-regression pin.

The load-bearing invariant: the ``intel-vtd`` backend (and no backend
at all) must reproduce the pre-backend simulator bit for bit --
records, digests, windows, stats. Everything else (set-associative
conflict misses, FIFO victims, per-page drain costs, IOVA quirks) is
allowed to differ *only* when a non-default backend asks for it.
"""

from __future__ import annotations

import pytest

from repro import backends
from repro.backends import (ALL_BACKENDS, AMD_VI, ARM_SMMUV3,
                            DEFAULT_BACKEND, DEFAULT_BACKEND_NAME,
                            INTEL_VTD, VIRTIO_IOMMU, IommuBackend)
from repro.errors import BackendError, IommuFault
from repro.iommu.domain import IovaEntry
from repro.iommu.iotlb import (DEFAULT_CAPACITY,
                               IOTLB_INVALIDATION_CYCLES, Iotlb)
from repro.iommu.perms import DmaPerm
from repro.sim.kernel import Kernel


def entry(pfn: int) -> IovaEntry:
    return IovaEntry(pfn, pfn + 1000, DmaPerm.BIDIRECTIONAL)


# -- registry ---------------------------------------------------------------

def test_registry_names_and_default():
    assert backends.backend_names() == (
        "amd-vi", "arm-smmuv3", "intel-vtd", "virtio-iommu")
    assert DEFAULT_BACKEND_NAME == "intel-vtd"
    assert backends.get_backend("intel-vtd") is DEFAULT_BACKEND
    assert backends.resolve_backend(None) is DEFAULT_BACKEND
    assert backends.resolve_backend(ARM_SMMUV3) is ARM_SMMUV3


def test_unknown_backend_is_one_shared_error():
    with pytest.raises(BackendError, match="unknown IOMMU backend"):
        backends.get_backend("riscv-iopmp")
    with pytest.raises(BackendError):
        backends.resolve_backend("riscv-iopmp")
    with pytest.raises(BackendError):
        backends.backend_label("riscv-iopmp")


def test_backend_label_is_none_only_for_default():
    assert backends.backend_label(None) is None
    assert backends.backend_label("intel-vtd") is None
    assert backends.backend_label(INTEL_VTD) is None
    assert backends.backend_label("arm-smmuv3") == "arm-smmuv3"
    assert backends.backend_label(AMD_VI) == "amd-vi"


def test_spec_is_frozen_and_json_deterministic():
    with pytest.raises(AttributeError):
        INTEL_VTD.iotlb_capacity = 1
    doc = ARM_SMMUV3.to_json()
    assert doc == ARM_SMMUV3.to_json()
    assert doc["name"] == "arm-smmuv3"
    assert doc["iotlb_associativity"] == 8
    assert doc["invalidation_granularity"] == "range"


def test_default_spec_matches_pre_backend_constants():
    # the constants the simulator used before backends existed
    assert INTEL_VTD.iotlb_capacity == DEFAULT_CAPACITY == 4096
    assert INTEL_VTD.invalidation_cycles == \
        IOTLB_INVALIDATION_CYCLES == 2000
    assert INTEL_VTD.flush_period_us == 10_000.0
    assert INTEL_VTD.invalidation_granularity == "domain"
    assert INTEL_VTD.iotlb_associativity is None
    assert INTEL_VTD.iotlb_replacement == "lru"
    assert INTEL_VTD.iova_free_cache is True


def test_spec_validation_rejects_bad_values():
    good = INTEL_VTD.to_json()

    def build(**overrides):
        doc = dict(good)
        doc.update(overrides)
        return IommuBackend(**doc)

    with pytest.raises(ValueError):
        build(iotlb_capacity=0)
    with pytest.raises(ValueError):
        build(iotlb_associativity=3)  # does not divide 4096
    with pytest.raises(ValueError):
        build(iotlb_replacement="random")
    with pytest.raises(ValueError):
        build(invalidation_granularity="cacheline")
    with pytest.raises(ValueError):
        build(default_mode="lazy")
    with pytest.raises(ValueError):
        build(flush_period_us=0.0)
    with pytest.raises(ValueError):
        build(invalidation_cycles=-1)


def test_parse_backends():
    assert backends.parse_backends("intel-vtd,arm-smmuv3") == \
        ["intel-vtd", "arm-smmuv3"]
    assert backends.parse_backends(" amd-vi , virtio-iommu ") == \
        ["amd-vi", "virtio-iommu"]
    with pytest.raises(BackendError, match="unknown IOMMU backend"):
        backends.parse_backends("intel-vtd,bogus")
    with pytest.raises(BackendError, match="duplicate"):
        backends.parse_backends("amd-vi,amd-vi")
    with pytest.raises(BackendError, match="at least two"):
        backends.parse_backends("intel-vtd")
    with pytest.raises(BackendError, match="at least two"):
        backends.parse_backends("")


# -- IOTLB geometry and edge cases ------------------------------------------

def test_iotlb_capacity_one():
    iotlb = Iotlb(capacity=1)
    iotlb.insert(1, entry(10))
    assert iotlb.lookup(1, 10) is not None
    iotlb.insert(1, entry(11))  # evicts the only entry
    assert iotlb.nr_entries == 1
    assert iotlb.stats.evictions == 1
    assert iotlb.lookup(1, 10) is None
    assert iotlb.lookup(1, 11) is not None


def test_iotlb_flush_all_on_empty():
    iotlb = Iotlb()
    assert iotlb.flush_all() == 0
    assert iotlb.stats.global_flushes == 1
    assert iotlb.nr_entries == 0


def test_iotlb_invalidate_non_resident():
    iotlb = Iotlb()
    assert iotlb.invalidate(3, 99) is False
    assert iotlb.stats.invalidations == 1
    iotlb.insert(3, entry(99))
    assert iotlb.invalidate(3, 99) is True
    assert iotlb.invalidate(3, 99) is False


@pytest.mark.parametrize("fraction", (-0.1, -1.0, 1.0001, 2.0))
def test_force_evict_rejects_out_of_range(fraction):
    iotlb = Iotlb()
    iotlb.insert(1, entry(1))
    with pytest.raises(ValueError,
                       match=r"force_evict fraction must be within"):
        iotlb.force_evict(fraction)
    # the bad call must not have evicted anything
    assert iotlb.nr_entries == 1


def test_force_evict_boundaries():
    iotlb = Iotlb()
    for pfn in range(8):
        iotlb.insert(1, entry(pfn))
    assert iotlb.force_evict(0.0) == 1   # floor: at least one victim
    assert iotlb.nr_entries == 7
    assert iotlb.force_evict(1.0) == 7   # full storm drains the cache
    assert iotlb.nr_entries == 0
    assert iotlb.force_evict(0.5) == 0   # nothing left to evict


def test_set_associative_conflict_eviction():
    # 4 sets x 2 ways: pfns congruent mod 4 collide in one set
    iotlb = Iotlb(capacity=8, associativity=2)
    assert iotlb.nr_sets == 4 and iotlb.ways == 2
    iotlb.insert(0, entry(0))
    iotlb.insert(0, entry(4))
    iotlb.insert(0, entry(8))  # third resident of set 0: evicts pfn 0
    assert iotlb.stats.evictions == 1
    assert iotlb.lookup(0, 0) is None
    assert iotlb.lookup(0, 4) is not None
    assert iotlb.lookup(0, 8) is not None
    # a fully-associative cache of the same capacity keeps all three
    flat = Iotlb(capacity=8)
    for pfn in (0, 4, 8):
        flat.insert(0, entry(pfn))
    assert flat.stats.evictions == 0


def test_fifo_vs_lru_victim_choice():
    def fill(replacement: str) -> Iotlb:
        iotlb = Iotlb(capacity=2, replacement=replacement)
        iotlb.insert(1, entry(10))
        iotlb.insert(1, entry(11))
        assert iotlb.lookup(1, 10) is not None  # touch the older entry
        iotlb.insert(1, entry(12))              # forces one eviction
        return iotlb

    lru = fill("lru")
    # the hit refreshed pfn 10, so LRU evicts pfn 11
    assert lru.contains(1, 10) and not lru.contains(1, 11)
    fifo = fill("fifo")
    # FIFO ignores the hit and evicts the oldest insertion, pfn 10
    assert not fifo.contains(1, 10) and fifo.contains(1, 11)


def test_iotlb_backend_geometry():
    arm = Iotlb(backend=ARM_SMMUV3)
    assert (arm.capacity, arm.ways, arm.replacement) == (1024, 8, "lru")
    amd = Iotlb(backend=AMD_VI)
    assert (amd.capacity, amd.ways, amd.replacement) == (512, 512, "fifo")
    virtio = Iotlb(backend=VIRTIO_IOMMU)
    assert (virtio.capacity, virtio.ways) == (256, 4)


def test_default_backend_iotlb_is_identical_to_plain():
    plain, via_backend = Iotlb(), Iotlb(backend=INTEL_VTD)
    for iotlb in (plain, via_backend):
        assert iotlb.capacity == 4096
        assert iotlb.nr_sets == 1
        assert iotlb.replacement == "lru"
    for pfn in range(64):
        plain.insert(2, entry(pfn))
        via_backend.insert(2, entry(pfn))
    for pfn in range(0, 64, 7):
        assert (plain.lookup(2, pfn) is None) == \
            (via_backend.lookup(2, pfn) is None)
    assert vars(plain.stats) == vars(via_backend.stats)


def test_iotlb_property_default_equals_intel_vtd():
    """Random op sequences behave identically with and without the
    default backend spec -- the refactor added a parameter, not
    behavior."""
    hypothesis = pytest.importorskip("hypothesis")
    from hypothesis import given, settings
    from hypothesis import strategies as st

    ops = st.lists(
        st.tuples(st.sampled_from(("insert", "lookup", "invalidate",
                                   "flush", "evict")),
                  st.integers(0, 2), st.integers(0, 40)),
        max_size=80)

    @settings(max_examples=60, deadline=None)
    @given(ops)
    def run(sequence):
        plain, spec = Iotlb(), Iotlb(backend=INTEL_VTD)
        for op, domain, pfn in sequence:
            if op == "insert":
                plain.insert(domain, entry(pfn))
                spec.insert(domain, entry(pfn))
            elif op == "lookup":
                a, b = plain.lookup(domain, pfn), spec.lookup(domain, pfn)
                assert (a is None) == (b is None)
            elif op == "invalidate":
                assert plain.invalidate(domain, pfn) == \
                    spec.invalidate(domain, pfn)
            elif op == "flush":
                assert plain.flush_all() == spec.flush_all()
            else:
                assert plain.force_evict((pfn % 10) / 10.0) == \
                    spec.force_evict((pfn % 10) / 10.0)
        assert vars(plain.stats) == vars(spec.stats)
        assert plain.nr_entries == spec.nr_entries

    run()


# -- kernel-level backend behavior ------------------------------------------

def measure_window_ms(backend, mode=None, probe_step_ms=0.5) -> float:
    """Fig 6 probe: how long after unmap the device can still write."""
    spec = backends.resolve_backend(backend)
    kernel = Kernel(seed=3, phys_mb=128,
                    iommu_mode=mode or spec.default_mode,
                    iommu_backend=backend,
                    boot_jitter_pages=0, boot_jitter_blocks=0)
    kernel.iommu.attach_device("dev0")
    kva = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"warm")
    kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_FROM_DEVICE")
    window_ms = 0.0
    while window_ms < 50.0:
        try:
            kernel.iommu.device_write("dev0", iova, b"stale")
        except IommuFault:
            break
        kernel.advance_time_ms(probe_step_ms)
        window_ms += probe_step_ms
    return window_ms


def test_intel_vtd_window_identical_to_default():
    for mode in ("deferred", "strict"):
        assert measure_window_ms(None, mode) == \
            measure_window_ms("intel-vtd", mode)


def test_per_backend_windows_follow_the_spec():
    # deferred backends: window bounded by their flush cadence
    assert 5.0 <= measure_window_ms("intel-vtd") <= 10.5
    assert 5.0 <= measure_window_ms("arm-smmuv3") <= 10.5
    assert 10.0 <= measure_window_ms("amd-vi") <= 20.5
    # virtio-iommu defaults to strict: the window never opens
    assert measure_window_ms("virtio-iommu") == 0.0


def test_amd_vi_does_not_reuse_iovas():
    kernel = Kernel(seed=3, phys_mb=128, iommu_backend="amd-vi",
                    boot_jitter_pages=0, boot_jitter_blocks=0)
    kernel.iommu.attach_device("dev0")
    kva = kernel.slab.kmalloc(256)
    first = kernel.dma.dma_map_single("dev0", kva, 256, "DMA_TO_DEVICE")
    kernel.dma.dma_unmap_single("dev0", first, 256, "DMA_TO_DEVICE")
    kernel.advance_time_ms(25.0)  # let the flush queue release it
    second = kernel.dma.dma_map_single("dev0", kva, 256, "DMA_TO_DEVICE")
    assert second != first  # monotonic allocator: no free-list reuse

    vtd = Kernel(seed=3, phys_mb=128,
                 boot_jitter_pages=0, boot_jitter_blocks=0)
    vtd.iommu.attach_device("dev0")
    kva = vtd.slab.kmalloc(256)
    first = vtd.dma.dma_map_single("dev0", kva, 256, "DMA_TO_DEVICE")
    vtd.dma.dma_unmap_single("dev0", first, 256, "DMA_TO_DEVICE")
    vtd.advance_time_ms(25.0)
    second = vtd.dma.dma_map_single("dev0", kva, 256, "DMA_TO_DEVICE")
    assert second == first  # the default free-cache hands it back


def test_kernel_rejects_unknown_backend():
    with pytest.raises(BackendError):
        Kernel(seed=3, phys_mb=128, iommu_backend="bogus")


# -- the intel-vtd no-regression pin ----------------------------------------

def test_run_seed_intel_vtd_matches_default_byte_for_byte():
    from repro.campaign.results import _VOLATILE_KEYS, findings_digest
    from repro.campaign.runner import run_seed

    kwargs = dict(base_seed=2021, mutations_per_seed=2, scale=0.06,
                  trace_events=0)
    default = run_seed(4, **kwargs)
    vtd = run_seed(4, backend="intel-vtd", **kwargs)
    strip = lambda record: {key: value
                            for key, value in sorted(record.items())
                            if key not in _VOLATILE_KEYS}
    assert strip(default) == strip(vtd)
    assert "backend" not in default and "backend" not in vtd
    assert "window_sites" not in default
    assert findings_digest({4: default}) == findings_digest({4: vtd})


def test_run_seed_non_default_backend_annotates_and_probes():
    from repro.campaign.runner import run_seed

    record = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=0.06, trace_events=0, backend="arm-smmuv3")
    assert record["status"] == "ok"
    assert record["backend"] == "arm-smmuv3"
    assert record["window_sites"]  # every replayed site got probed
    assert all(isinstance(open_, bool)
               for open_ in record["window_sites"].values())
    # deferred ARM model: most post-unmap windows are open
    assert any(record["window_sites"].values())

    strict = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=0.06, trace_events=0,
                      backend="virtio-iommu")
    assert strict["backend"] == "virtio-iommu"
    # synchronous unmaps: no window is ever observed open
    assert not any(strict["window_sites"].values())
