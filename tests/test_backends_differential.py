"""Cross-backend differential campaigns, serve protocol backends, and
per-backend BENCH history lanes."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import (backend_results_path,
                            cross_backend_disagreements,
                            cross_results_path,
                            format_multi_backend_summary,
                            run_multi_backend_campaign)
from repro.campaign.results import (_VOLATILE_KEYS, findings_digest,
                                    load_records)
from repro.campaign.runner import CampaignConfig, run_seed
from repro.errors import CampaignError, ServeError
from repro.serve import normalize_request, parse_request

SCALE = 0.06


# -- the pure diff ----------------------------------------------------------

def ok_record(**extra) -> dict:
    record = {"status": "ok", "disagreements": []}
    record.update(extra)
    return record


def test_cross_disagreements_window_kind():
    cross = cross_backend_disagreements({
        "intel-vtd": {1: ok_record()},  # no window_sites: all closed
        "arm-smmuv3": {1: ok_record(
            window_sites={"a.c:10": True, "b.c:20": False})},
    })
    assert cross == [{
        "kind": "backend-window", "seed": 1, "path": "a.c", "line": 10,
        "site": "a.c:10",
        "windows": {"arm-smmuv3": True, "intel-vtd": False}}]


def test_cross_disagreements_verdict_kind():
    cross = cross_backend_disagreements({
        "amd-vi": {3: ok_record(disagreements=[
            {"path": "x.c", "line": 7, "verdict": "spade-only"}])},
        "virtio-iommu": {3: ok_record(disagreements=[])},
    })
    assert len(cross) == 1
    assert cross[0]["kind"] == "backend-verdict"
    assert cross[0]["site"] == "x.c:7"
    assert cross[0]["verdicts"] == {"amd-vi": "spade-only",
                                    "virtio-iommu": None}


def test_cross_disagreements_skips_failed_seeds():
    cross = cross_backend_disagreements({
        "intel-vtd": {1: {"status": "error", "error": "boom"}},
        "arm-smmuv3": {1: ok_record(window_sites={"a.c:10": True})},
    })
    assert cross == []  # seed 1 incomplete on intel-vtd: nothing to diff


def test_cross_disagreements_agreement_is_silent():
    cross = cross_backend_disagreements({
        "arm-smmuv3": {1: ok_record(window_sites={"a.c:10": True})},
        "amd-vi": {1: ok_record(window_sites={"a.c:10": True})},
    })
    assert cross == []


def test_result_paths():
    assert backend_results_path("out/run.jsonl", "amd-vi") == \
        "out/run.amd-vi.jsonl"
    assert cross_results_path("out/run.jsonl") == "out/run.cross.jsonl"
    assert backend_results_path("run", "arm-smmuv3") == \
        "run.arm-smmuv3.jsonl"


# -- the end-to-end campaign ------------------------------------------------

def test_multi_backend_campaign_validates_inputs():
    config = CampaignConfig(nr_seeds=1, output="x.jsonl")
    with pytest.raises(CampaignError, match="at least two distinct"):
        run_multi_backend_campaign(config, ["intel-vtd", "intel-vtd"])
    with pytest.raises(CampaignError, match="--output stem"):
        run_multi_backend_campaign(
            CampaignConfig(nr_seeds=1, output=None),
            ["intel-vtd", "arm-smmuv3"])


def test_multi_backend_campaign_end_to_end(tmp_path):
    """The acceptance lever: intel-vtd vs arm-smmuv3 must disagree on
    windows, and the intel-vtd lane must equal a plain default run."""
    output = str(tmp_path / "run.jsonl")
    config = CampaignConfig(nr_seeds=2, seed_base=1, jobs=1,
                            mutations_per_seed=2, scale=SCALE,
                            output=output, trace_events=0)
    seen = []
    multi = run_multi_backend_campaign(
        config, ["intel-vtd", "arm-smmuv3"],
        progress=lambda name, record: seen.append((name, record["seed"])))

    assert multi.all_ok
    assert multi.backends == ["intel-vtd", "arm-smmuv3"]
    assert sorted(seen) == [("arm-smmuv3", 1), ("arm-smmuv3", 2),
                            ("intel-vtd", 1), ("intel-vtd", 2)]

    # >= 1 backend-dependent disagreement, persisted as sorted JSONL
    assert multi.nr_cross >= 1
    assert any(record["kind"] == "backend-window"
               for record in multi.cross)
    with open(multi.cross_output, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle]
    assert lines == multi.cross
    for record in lines:
        if record["kind"] == "backend-window":
            assert set(record["windows"]) == {"intel-vtd", "arm-smmuv3"}

    # the intel-vtd lane is byte-identical to a plain default run
    plain = {seed: run_seed(seed, mutations_per_seed=2, scale=SCALE,
                            trace_events=0)
             for seed in (1, 2)}
    assert multi.digests["intel-vtd"] == findings_digest(plain)
    assert multi.digests["intel-vtd"] != multi.digests["arm-smmuv3"]

    # every per-backend record replays bit-for-bit with run_seed
    arm_records = load_records(multi.outputs["arm-smmuv3"])
    replayed = run_seed(1, mutations_per_seed=2, scale=SCALE,
                        trace_events=0, backend="arm-smmuv3")
    strip = lambda record: {key: value for key, value in record.items()
                            if key not in _VOLATILE_KEYS}
    assert strip(replayed) == strip(arm_records[1])

    summary_text = format_multi_backend_summary(multi)
    assert "backend-window" in summary_text
    assert os.path.basename(multi.cross_output) == "run.cross.jsonl"


# -- serve protocol backend field -------------------------------------------

def test_serve_replay_carries_non_default_backend():
    request = parse_request(
        b'{"type": "replay", "seed": 4, "backend": "arm-smmuv3"}')
    assert request["backend"] == "arm-smmuv3"


def test_serve_replay_default_backend_is_normalized_away():
    # explicit intel-vtd and absent field must hash identically
    explicit = parse_request(
        b'{"type": "replay", "seed": 4, "backend": "intel-vtd"}')
    absent = parse_request(b'{"type": "replay", "seed": 4}')
    assert "backend" not in explicit
    assert explicit == absent


def test_serve_default_backend_config_applies_to_replay():
    request = parse_request(b'{"type": "replay", "seed": 4}',
                            default_backend="amd-vi")
    assert request["backend"] == "amd-vi"
    # a server pinned to the default backend changes nothing
    request = parse_request(b'{"type": "replay", "seed": 4}',
                            default_backend="intel-vtd")
    assert "backend" not in request


def test_serve_analyze_validates_then_drops_backend():
    # SPADE is static analysis: findings are backend-independent, so
    # the field is validated (bad names still fail fast) but dropped
    # from the normalized request to keep batch coalescing intact.
    request = normalize_request(
        {"type": "analyze", "backend": "arm-smmuv3"})
    assert "backend" not in request
    with pytest.raises(ServeError, match="unknown IOMMU backend"):
        normalize_request({"type": "analyze", "backend": "bogus"})


def test_serve_rejects_bad_backend_values():
    with pytest.raises(ServeError, match="unknown IOMMU backend"):
        parse_request(b'{"type": "replay", "seed": 1, '
                      b'"backend": "powervm"}')
    with pytest.raises(ServeError, match="expected str"):
        parse_request(b'{"type": "replay", "seed": 1, "backend": 3}')


# -- BENCH history lanes ----------------------------------------------------

def bench_report(**extra) -> dict:
    report = {
        "spade": {"scale": 1.0, "corpus_seed": 2021, "nr_files": 10},
        "campaign": {"scale": 0.1,
                     "runs": [{"jobs": 1, "nr_seeds": 4}]},
        "kernel": {"nr_events": 50_000, "rounds": 3},
        "ok": True, "timestamp": "t", "version": "v",
    }
    report.update(extra)
    return report


def test_history_signature_gains_backend_suffix():
    from repro.perfcache.history import config_signature, history_record

    default = bench_report()
    tagged = bench_report(backend="arm-smmuv3")
    assert "backend=" not in config_signature(default)
    assert config_signature(tagged).endswith(",backend=arm-smmuv3")
    assert config_signature(tagged) != config_signature(default)
    # same-backend runs still share one lane
    assert config_signature(tagged) == \
        config_signature(bench_report(backend="arm-smmuv3"))

    assert "backend" not in history_record(default)
    assert history_record(tagged)["backend"] == "arm-smmuv3"
