"""Bench trajectory: BENCH_history.jsonl records and the regression gate."""

import json

import pytest

from repro.cli import main
from repro.perfcache import history


def _report(*, cold_s=1.0, warm_disk_s=0.1, iotlb_rate=1_000_000.0,
            scale=0.5, ok=True) -> dict:
    return {
        "schema": 1,
        "version": "1.4.0",
        "timestamp": "2026-08-06T12:00:00Z",
        "spade": {"scale": scale, "corpus_seed": 2021, "nr_files": 10,
                  "nr_findings": 4, "uncached_s": cold_s * 0.9,
                  "cold_s": cold_s, "warm_disk_s": warm_disk_s,
                  "warm_memory_s": warm_disk_s / 10,
                  "speedup_disk": 9.0, "speedup_memory": 90.0,
                  "warm_disk_stats": {}, "identical": True},
        "campaign": {"scale": 0.08,
                     "runs": [{"jobs": 1, "nr_seeds": 2,
                               "elapsed_s": 0.5, "seeds_per_s": 4.0,
                               "nr_ok": 2}]},
        "kernel": {"nr_events": 10000, "rounds": 1,
                   "iotlb_best_s": 0.01,
                   "iotlb_events_per_s": iotlb_rate,
                   "page_frag_best_s": 0.02,
                   "page_frag_events_per_s": iotlb_rate / 2},
        "checks": {"warm_faster_than_cold": True,
                   "cached_findings_identical": True},
        "ok": ok,
    }


def test_signature_separates_configurations():
    assert history.config_signature(_report(scale=0.5)) != \
        history.config_signature(_report(scale=1.0))
    assert history.config_signature(_report()) == \
        history.config_signature(_report(cold_s=99.0))


def test_tracked_metrics_flatten():
    tracked = history.tracked_metrics(_report(cold_s=2.0))
    assert tracked["spade_cold_s"] == 2.0
    assert tracked["iotlb_events_per_s"] == 1_000_000.0
    assert tracked["campaign_seeds_per_s_jobs1"] == 4.0


def test_history_roundtrip_skips_torn_lines(tmp_path):
    path = str(tmp_path / "hist.jsonl")
    record = history.history_record(_report())
    history.append_history(path, record)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{torn json\n")
        handle.write(json.dumps({"schema": 99}) + "\n")
    history.append_history(path, record)
    assert len(history.load_history(path)) == 2
    assert history.load_history(path,
                                signature=record["signature"]) \
        == [record, record]
    assert history.load_history(path, signature="scale=other") == []
    assert history.load_history(str(tmp_path / "missing.jsonl")) == []


def _gate(current_report, prior_reports, **kwargs):
    record = history.history_record(current_report)
    prior = [history.history_record(r) for r in prior_reports]
    return history.check_regressions(record, prior, **kwargs)


def test_injected_2x_slowdown_is_flagged():
    priors = [_report(cold_s=1.0)] * 3
    regressions = _gate(_report(cold_s=2.0), priors)
    names = {r.metric for r in regressions}
    assert "spade_cold_s" in names
    slow = next(r for r in regressions if r.metric == "spade_cold_s")
    assert slow.direction == "slower"
    assert slow.ratio == pytest.approx(2.0)
    assert "2.00x slower" in slow.describe()


def test_rate_drop_is_flagged():
    priors = [_report(iotlb_rate=1_000_000.0)] * 3
    regressions = _gate(_report(iotlb_rate=400_000.0), priors)
    assert {r.metric for r in regressions} >= \
        {"iotlb_events_per_s", "page_frag_events_per_s"}
    assert all(r.direction == "lower-rate" for r in regressions)


def test_within_threshold_passes():
    priors = [_report(cold_s=1.0)] * 3
    assert _gate(_report(cold_s=1.2), priors) == []
    assert _gate(_report(cold_s=0.5), priors) == []   # faster is fine


def test_empty_history_gates_nothing():
    assert _gate(_report(cold_s=50.0), []) == []


def test_window_bounds_the_median():
    # 10 fast old runs pushed out of a window of 3 by slow recent runs
    priors = [_report(cold_s=0.1)] * 10 + [_report(cold_s=1.0)] * 3
    assert _gate(_report(cold_s=1.2), priors, window=3) == []
    regressions = _gate(_report(cold_s=1.2), priors, window=13)
    # uncached_s is derived from cold_s in the fixture, so it regresses
    # in lockstep
    assert {r.metric for r in regressions} == {"spade_cold_s",
                                               "spade_uncached_s"}


def test_campaign_rates_recorded_but_never_gated():
    fast = _report()
    fast["campaign"]["runs"][0]["seeds_per_s"] = 100.0
    slow = _report()
    slow["campaign"]["runs"][0]["seeds_per_s"] = 1.0
    assert _gate(slow, [fast] * 5) == []


def _scaling_report(jobs1=4.0, jobs2=6.0, jobs4=8.0) -> dict:
    report = _report()
    report["campaign"]["runs"] = [
        {"jobs": 1, "nr_seeds": 16, "elapsed_s": 4.0,
         "seeds_per_s": jobs1, "nr_ok": 16},
        {"jobs": 2, "nr_seeds": 16, "elapsed_s": 2.7,
         "seeds_per_s": jobs2, "nr_ok": 16,
         "parallel_ratio": round(jobs2 / jobs1, 4)},
        {"jobs": 4, "nr_seeds": 16, "elapsed_s": 2.0,
         "seeds_per_s": jobs4, "nr_ok": 16,
         "parallel_ratio": round(jobs4 / jobs1, 4)},
    ]
    return report


def test_parallel_ratio_recorded_per_lane():
    tracked = history.tracked_metrics(_scaling_report())
    assert tracked["campaign_parallel_ratio_jobs2"] == \
        pytest.approx(1.5)
    assert tracked["campaign_parallel_ratio_jobs4"] == \
        pytest.approx(2.0)
    # the headline ratio is the widest lane over jobs=1
    assert tracked["campaign_parallel_ratio"] == pytest.approx(2.0)


def test_parallel_ratio_gate_fails_below_minimum():
    record = history.history_record(_scaling_report(jobs4=5.0))
    message = history.parallel_ratio_gate(record, min_ratio=1.5)
    assert message is not None and "FAIL" in message
    assert "1.25" in message and "1.50" in message


def test_parallel_ratio_gate_passes_at_or_above_minimum():
    record = history.history_record(_scaling_report(jobs4=6.0))
    assert history.parallel_ratio_gate(record, min_ratio=1.5) is None


def test_parallel_ratio_gate_disabled_and_missing():
    slow = history.history_record(_scaling_report(jobs4=1.0))
    assert history.parallel_ratio_gate(slow, min_ratio=0) is None
    # a single-lane bench has no ratio: nothing to gate
    single = history.history_record(_report())
    assert history.parallel_ratio_gate(single, min_ratio=1.5) is None


def test_format_regressions_mentions_threshold():
    regressions = _gate(_report(cold_s=2.0), [_report(cold_s=1.0)] * 3)
    text = history.format_regressions(regressions, threshold=0.25)
    assert "25% gate" in text
    assert "spade_cold_s" in text
    assert history.format_regressions([]) == \
        "bench check: OK (no tracked metric regressed)"


# -- the bench CLI wiring ----------------------------------------------------------


@pytest.fixture()
def fake_bench(monkeypatch):
    """Make ``repro-dma bench`` instant and steerable."""
    from repro.perfcache import bench

    state = {"report": _report()}
    monkeypatch.setattr(
        bench, "run_benchmarks",
        lambda **kwargs: json.loads(json.dumps(state["report"])))
    return state


def _bench(tmp_path, *extra):
    return main(["bench", "--output", str(tmp_path / "BENCH_perf.json"),
                 "--history", str(tmp_path / "hist.jsonl"), *extra])


def test_cli_bench_record_grows_history(tmp_path, fake_bench, capsys):
    assert _bench(tmp_path) == 0
    assert _bench(tmp_path) == 0
    assert len(history.load_history(str(tmp_path / "hist.jsonl"))) == 2
    assert "recorded run" in capsys.readouterr().out


def test_cli_bench_no_record_leaves_history_alone(tmp_path, fake_bench):
    assert _bench(tmp_path, "--no-record") == 0
    assert history.load_history(str(tmp_path / "hist.jsonl")) == []


def test_cli_bench_check_fails_on_2x_slowdown(tmp_path, fake_bench,
                                              capsys):
    for _ in range(3):
        assert _bench(tmp_path) == 0
    fake_bench["report"] = _report(cold_s=2.0)
    assert _bench(tmp_path, "--check") == 1
    out = capsys.readouterr().out
    assert "regression(s)" in out
    assert "spade_cold_s" in out
    # the regressing run is still recorded (the trajectory must show it)
    assert len(history.load_history(str(tmp_path / "hist.jsonl"))) == 4


def test_cli_bench_check_passes_against_itself(tmp_path, fake_bench,
                                               capsys):
    for _ in range(3):
        assert _bench(tmp_path) == 0
    assert _bench(tmp_path, "--check") == 0
    assert "bench check: OK" in capsys.readouterr().out


def test_cli_bench_check_ignores_other_signatures(tmp_path, fake_bench):
    for _ in range(3):
        assert _bench(tmp_path) == 0
    # same slowdown, but at a different scale: not comparable, no gate
    fake_bench["report"] = _report(cold_s=2.0, scale=1.0)
    assert _bench(tmp_path, "--check") == 0


def test_cli_bench_check_hard_gates_parallel_ratio(tmp_path, fake_bench,
                                                   capsys):
    fake_bench["report"] = _scaling_report(jobs2=3.0, jobs4=3.6)
    assert _bench(tmp_path, "--check") == 1   # 0.9x < default 1.5
    out = capsys.readouterr().out
    assert "campaign parallel ratio 0.90" in out
    # the failing run still lands in the trajectory
    assert len(history.load_history(str(tmp_path / "hist.jsonl"))) == 1


def test_cli_bench_min_parallel_ratio_zero_disables_gate(
        tmp_path, fake_bench, capsys):
    fake_bench["report"] = _scaling_report(jobs2=3.0, jobs4=3.6)
    assert _bench(tmp_path, "--check",
                  "--min-parallel-ratio", "0") == 0
    out = capsys.readouterr().out
    assert "slower than" in out   # advisory warning still printed
