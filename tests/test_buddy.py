"""BuddyAllocator: splitting, merging, per-CPU hot reuse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocatorError, OutOfMemoryError
from repro.mem.buddy import MAX_ORDER, BuddyAllocator
from repro.mem.phys import PhysicalMemory


def make_buddy(nr_pages=4096, reserved=256, **kwargs):
    return BuddyAllocator(PhysicalMemory(nr_pages),
                          reserved_low_pages=reserved, **kwargs)


def test_alloc_returns_unreserved_pfn():
    buddy = make_buddy()
    pfn = buddy.alloc_page()
    assert pfn >= 256


def test_alloc_marks_pages_allocated():
    buddy = make_buddy()
    pfn = buddy.alloc_pages(2)
    for i in range(4):
        assert buddy.is_allocated(pfn + i)


def test_higher_order_is_aligned():
    buddy = make_buddy()
    for order in range(MAX_ORDER + 1):
        pfn = buddy.alloc_pages(order)
        assert pfn % (1 << order) == 0


def test_free_then_alloc_reuses_hot_page():
    """Per-CPU LIFO: the most recently freed page comes back first."""
    buddy = make_buddy()
    first = buddy.alloc_page(cpu=0)
    second = buddy.alloc_page(cpu=0)
    buddy.free_pages(first)
    buddy.free_pages(second)
    assert buddy.alloc_page(cpu=0) == second
    assert buddy.alloc_page(cpu=0) == first


def test_pcp_caches_are_per_cpu():
    buddy = make_buddy(nr_cpus=2)
    pfn = buddy.alloc_page(cpu=0)
    buddy.free_pages(pfn, cpu=0)
    # CPU 1 does not see CPU 0's hot page first
    other = buddy.alloc_page(cpu=1)
    assert other != pfn


def test_double_free_rejected():
    buddy = make_buddy()
    pfn = buddy.alloc_page()
    buddy.free_pages(pfn)
    with pytest.raises(AllocatorError):
        buddy.free_pages(pfn)


def test_free_wrong_order_rejected():
    buddy = make_buddy()
    pfn = buddy.alloc_pages(2)
    with pytest.raises(AllocatorError):
        buddy.free_pages(pfn, 1)
    buddy.free_pages(pfn, 2)  # still freeable with the right order


def test_bad_order_rejected():
    buddy = make_buddy()
    with pytest.raises(AllocatorError):
        buddy.alloc_pages(MAX_ORDER + 1)


def test_out_of_memory():
    buddy = make_buddy(nr_pages=512, reserved=256)
    with pytest.raises(OutOfMemoryError):
        for _ in range(1000):
            buddy.alloc_pages(4)


def test_buddy_merge_restores_large_blocks():
    """Freeing both buddies coalesces them back for large allocations."""
    buddy = make_buddy(nr_pages=1024, reserved=0)
    pfns = [buddy.alloc_pages(9) for _ in range(2)]  # split the 1024 block
    with pytest.raises(OutOfMemoryError):
        buddy.alloc_pages(10)
    for pfn in pfns:
        buddy.free_pages(pfn)
    assert buddy.alloc_pages(10) == 0  # merged back to one max block


def test_free_count_tracks():
    buddy = make_buddy()
    before = buddy.nr_free_pages
    pfn = buddy.alloc_pages(3)
    assert buddy.nr_free_pages == before - 8
    buddy.free_pages(pfn)
    assert buddy.nr_free_pages == before


def test_reserved_exceeding_memory_rejected():
    with pytest.raises(ValueError):
        BuddyAllocator(PhysicalMemory(64), reserved_low_pages=64)


def test_deterministic_allocation_sequence():
    """Identical construction yields identical allocation order -- the
    boot determinism RingFlood leans on (section 5.3)."""
    a = make_buddy()
    b = make_buddy()
    seq_a = [a.alloc_pages(order) for order in (0, 3, 0, 2, 1, 3)]
    seq_b = [b.alloc_pages(order) for order in (0, 3, 0, 2, 1, 3)]
    assert seq_a == seq_b


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 4), min_size=1, max_size=40))
def test_property_no_overlapping_allocations(orders):
    """Live allocations never overlap, and free+realloc conserves pages."""
    buddy = make_buddy()
    live: list[tuple[int, int]] = []
    total_free = buddy.nr_free_pages
    for i, order in enumerate(orders):
        pfn = buddy.alloc_pages(order)
        span = range(pfn, pfn + (1 << order))
        for other_pfn, other_order in live:
            other = range(other_pfn, other_pfn + (1 << other_order))
            assert set(span).isdisjoint(other)
        live.append((pfn, order))
        if i % 3 == 2:  # free every third allocation
            old_pfn, old_order = live.pop(0)
            buddy.free_pages(old_pfn)
    for pfn, _order in live:
        buddy.free_pages(pfn)
    assert buddy.nr_free_pages == total_free
