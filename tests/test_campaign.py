"""Campaign subsystem: mutator, differential oracle, shrinker.

Everything runs on a scaled-down composition so the whole module
stays in the tier-1 time budget; the mutation/oracle/shrink semantics
are scale-independent.
"""

import pytest

from repro.campaign import (MUTATION_KINDS, CorpusMutator, Mutation,
                            run_differential, shrink_seed)
from repro.campaign.shrink import shrink_mutations
from repro.errors import CampaignError

SCALE = 0.1


@pytest.fixture(scope="module")
def mutator() -> CorpusMutator:
    return CorpusMutator(2021, scale=SCALE)


@pytest.fixture(scope="module")
def eligible(mutator):
    _tree, manifest = mutator.base()
    return mutator._eligible_paths(manifest)


# -- mutation planning and application ------------------------------------------


def test_plan_is_deterministic(mutator):
    assert mutator.plan(7, 6) == mutator.plan(7, 6)
    assert mutator.plan(7, 6) != mutator.plan(8, 6)


def test_plan_kinds_are_known(mutator):
    for mutation in mutator.plan(3, 12):
        assert mutation.kind in MUTATION_KINDS


def test_derive_is_deterministic(mutator):
    first = mutator.derive(5, 4)
    second = mutator.derive(5, 4)
    assert first.tree.files == second.tree.files
    assert [(s.path, s.line, s.category, s.exposures)
            for s in first.manifest.sites] == \
        [(s.path, s.line, s.category, s.exposures)
         for s in second.manifest.sites]


def test_mutated_tree_differs_from_base(mutator):
    base_tree, base_manifest = mutator.base()
    mutated = mutator.derive(5, 4)
    assert mutated.tree.files != base_tree.files
    assert len(mutated.mutations) == 4


def test_unknown_mutation_kind_rejected(mutator):
    with pytest.raises(CampaignError):
        mutator.apply([Mutation("teleport", "drivers/x/x_main.c")])


def test_truth_preserving_mutations_keep_manifest_totals(mutator,
                                                         eligible):
    _base_tree, base_manifest = mutator.base()
    mutations = [Mutation("pad-struct", eligible["pad-struct"][0]),
                 Mutation("swap-direction",
                          eligible["swap-direction"][1]),
                 Mutation("move-callback", eligible["move-callback"][0])]
    mutated = mutator.apply(mutations)
    assert mutated.manifest.nr_calls == base_manifest.nr_calls
    assert mutated.manifest.table2_rows() == base_manifest.table2_rows()


def test_clone_benign_grows_manifest(mutator, eligible):
    _tree, base_manifest = mutator.base()
    path = eligible["clone-benign"][0]
    mutated = mutator.apply([Mutation("clone-benign", path)])
    assert mutated.manifest.nr_calls == base_manifest.nr_calls + 1
    new_site = max(mutated.manifest.by_path(path),
                   key=lambda s: s.line)
    assert new_site.category == "benign"
    assert not new_site.vulnerable


def test_manifest_lines_track_mutated_text(mutator, eligible):
    path = eligible["pad-struct"][0]
    mutated = mutator.apply([Mutation("pad-struct", path)])
    text_lines = mutated.tree.read(path).splitlines()
    for site in mutated.manifest.by_path(path):
        assert "dma_map_single(" in text_lines[site.line - 1]


def test_opaque_map_expr_rewrites_call_site(mutator, eligible):
    path = eligible["opaque-map-expr"][0]
    mutated = mutator.apply([Mutation("opaque-map-expr", path,
                                      detail="24")])
    text = mutated.tree.read(path)
    assert "mut_p0 = (u8 *)" in text
    assert "+ 24;" in text
    # ground truth is unchanged: the struct page is still exposed
    base_sites = CorpusMutator(2021, scale=SCALE).base()[1].by_path(path)
    assert [s.exposures for s in mutated.manifest.by_path(path)] == \
        [s.exposures for s in base_sites]


# -- differential oracle ----------------------------------------------------------


@pytest.fixture(scope="module")
def clean_differential(mutator):
    tree, manifest = mutator.base()
    return run_differential(tree, manifest, seed=11)


def test_clean_corpus_spade_is_perfect(clean_differential):
    assert clean_differential.spade.precision == 1.0
    assert clean_differential.spade.recall == 1.0


def test_clean_corpus_dkasan_misses_only_stack(clean_differential):
    score = clean_differential.dkasan
    assert score.precision == 1.0
    assert score.fn == score.per_type["stack"][2] > 0
    for verdict in {d.verdict for d in clean_differential.disagreements}:
        assert verdict == "dkasan-miss"
    assert all(d.category == "stack"
               for d in clean_differential.disagreements)


def test_injected_spade_fn_surfaces_as_disagreement(mutator, eligible):
    """The acceptance-criteria scenario: a mutated callback offset
    makes SPADE blind while D-KASAN still sees the exposure."""
    path = eligible["opaque-map-expr"][0]
    mutated = mutator.apply([Mutation("opaque-map-expr", path,
                                      detail="16")])
    result = run_differential(mutated.tree, mutated.manifest, seed=11)
    misses = [d for d in result.disagreements
              if d.verdict == "spade-miss"]
    assert len(misses) == 1
    miss = misses[0]
    assert miss.path == path
    assert miss.dkasan_hit
    assert not miss.spade_labels
    assert set(miss.truth) & {"callback_direct", "callback_spoof"}
    assert result.spade.recall < 1.0
    assert any(path in exemplar
               for exemplar in result.spade_fn_exemplars)


# -- shrinker ---------------------------------------------------------------------


def test_shrinker_minimizes_to_injected_mutation(mutator, eligible):
    target_path = eligible["opaque-map-expr"][0]
    mutations = [
        Mutation("pad-struct", eligible["pad-struct"][0]),
        Mutation("swap-direction", eligible["swap-direction"][1]),
        Mutation("opaque-map-expr", target_path, detail="16"),
        Mutation("clone-benign", eligible["clone-benign"][2]),
        Mutation("move-callback", eligible["move-callback"][0]),
    ]
    mutated = mutator.apply(mutations)
    result = run_differential(mutated.tree, mutated.manifest, seed=11)
    target = next(d for d in result.disagreements
                  if d.verdict == "spade-miss")
    shrunk = shrink_seed(mutator, 11, mutations, target)
    assert [(m.kind, m.path) for m in shrunk.mutations] == \
        [("opaque-map-expr", target_path)]
    # the minimal tree still reproduces the disagreement
    minimal = run_differential(shrunk.corpus.tree,
                               shrunk.corpus.manifest, seed=11)
    assert any(d.verdict == "spade-miss" and d.path == target_path
               for d in minimal.disagreements)


def test_shrink_rejects_non_reproducing_target(mutator, eligible):
    mutations = [Mutation("pad-struct", eligible["pad-struct"][0])]
    with pytest.raises(CampaignError):
        shrink_mutations(mutations, lambda _subset: False)


def test_shrink_base_disagreement_yields_empty_set():
    """A disagreement the unmutated corpus already produces must not
    be pinned on an innocent mutation -- it shrinks to nothing."""
    mutations = [Mutation("pad-struct", f"drivers/a/d{i}/d{i}_main.c")
                 for i in range(4)]
    minimal, evaluations, history = shrink_mutations(
        mutations, lambda _subset: True)
    assert minimal == []
    assert evaluations == 2  # full list + empty set, nothing else
    assert history == [4, 0]


def test_shrink_keeps_all_when_all_needed():
    calls = []

    def predicate(subset):
        calls.append(len(subset))
        return len(subset) == 3

    mutations = [Mutation("pad-struct", f"drivers/a/d{i}/d{i}_main.c")
                 for i in range(3)]
    minimal, evaluations, history = shrink_mutations(mutations,
                                                     predicate)
    assert len(minimal) == 3
    assert evaluations == len(calls)
    assert history == [3]
