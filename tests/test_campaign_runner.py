"""Campaign runner: parallelism, persistence, resume, crash capture."""

import json
import os

import pytest

from repro.campaign import (CampaignConfig, format_summary,
                            run_campaign, summarize)
from repro.campaign.results import (append_record, completed_seeds,
                                    failure_record, load_records)
from repro.campaign.runner import run_seed

SCALE = 0.08


def _config(tmp_path, **overrides) -> CampaignConfig:
    settings = dict(nr_seeds=3, seed_base=1, jobs=1, base_seed=2021,
                    mutations_per_seed=3, scale=SCALE,
                    output=str(tmp_path / "results.jsonl"))
    settings.update(overrides)
    return CampaignConfig(**settings)


def test_run_seed_record_shape():
    record = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=SCALE)
    assert record["status"] == "ok"
    assert record["seed"] == 4
    assert record["nr_sites"] > 0
    assert len(record["mutations"]) == 2
    for detector in ("spade", "dkasan"):
        assert set(record[detector]) == {"tp", "fp", "fn", "per_type"}
    json.dumps(record)  # must be JSONL-serializable as-is


def test_run_seed_is_deterministic():
    first = run_seed(4, base_seed=2021, mutations_per_seed=2,
                     scale=SCALE)
    second = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=SCALE)
    first.pop("duration_s")
    second.pop("duration_s")
    assert first == second


def test_inline_campaign_writes_jsonl(tmp_path):
    config = _config(tmp_path)
    seen = []
    summary = run_campaign(config, progress=seen.append)
    assert summary.nr_seeds == summary.nr_ok == 3
    assert [record["seed"] for record in seen] == [1, 2, 3]
    lines = open(config.output).read().splitlines()
    assert len(lines) == 3
    assert {json.loads(line)["seed"] for line in lines} == {1, 2, 3}


def test_parallel_campaign_matches_inline(tmp_path):
    inline = run_campaign(_config(tmp_path / "a"))
    parallel = run_campaign(_config(tmp_path / "b", jobs=2))
    assert inline.nr_sites == parallel.nr_sites
    assert inline.spade.to_json() == parallel.spade.to_json()
    assert inline.dkasan.to_json() == parallel.dkasan.to_json()
    assert inline.disagreements == parallel.disagreements


def test_resume_skips_completed_seeds(tmp_path):
    config = _config(tmp_path)
    run_campaign(config)
    resumed = []
    summary = run_campaign(_config(tmp_path, resume=True),
                           progress=resumed.append)
    assert resumed == []  # zero redundant seed work
    assert summary.nr_ok == 3
    assert len(open(config.output).read().splitlines()) == 3


def test_resume_retries_failed_seeds(tmp_path):
    config = _config(tmp_path)
    append_record(config.output,
                  failure_record(2, "timeout", "exceeded 1s"))
    resumed = []
    summary = run_campaign(_config(tmp_path, resume=True),
                           progress=resumed.append)
    assert sorted(record["seed"] for record in resumed) == [1, 2, 3]
    assert summary.nr_ok == 3 and summary.nr_failed == 0


def test_resume_extends_campaign(tmp_path):
    run_campaign(_config(tmp_path, nr_seeds=2))
    resumed = []
    summary = run_campaign(_config(tmp_path, nr_seeds=4, resume=True),
                           progress=resumed.append)
    assert sorted(record["seed"] for record in resumed) == [3, 4]
    assert summary.nr_ok == 4


def test_crashy_seed_is_captured_not_fatal(tmp_path, monkeypatch):
    import repro.campaign.runner as runner_module

    real = runner_module.run_seed

    def flaky(seed, **kwargs):
        if seed == 2:
            raise RuntimeError("boom")
        return real(seed, **kwargs)

    monkeypatch.setattr(runner_module, "run_seed", flaky)
    summary = run_campaign(_config(tmp_path))
    assert summary.nr_ok == 2
    assert summary.nr_failed == 1
    assert summary.failures[0][0] == 2
    assert "boom" in summary.failures[0][1]
    assert not summary.all_ok


def test_load_records_tolerates_torn_line(tmp_path):
    path = tmp_path / "results.jsonl"
    append_record(str(path), failure_record(1, "error", "x"))
    with open(path, "a") as handle:
        handle.write('{"seed": 2, "status": "o')  # torn mid-crash
    records = load_records(str(path))
    assert set(records) == {1}
    assert completed_seeds(records) == set()


def test_in_memory_campaign_without_output(tmp_path):
    summary = run_campaign(_config(tmp_path, nr_seeds=2, output=None))
    assert summary.nr_ok == 2
    assert not os.path.exists(str(tmp_path / "results.jsonl"))


def test_summary_formatting_round_trip(tmp_path):
    config = _config(tmp_path)
    run_campaign(config)
    summary = summarize(load_records(config.output))
    text = format_summary(summary)
    assert "SPADE (static, per exposure label)" in text
    assert "D-KASAN (dynamic, per corpus category)" in text
    assert "precision" in text and "recall" in text
    assert "campaign: 3 seeds (3 ok, 0 failed)" in text


def test_config_seed_list():
    config = CampaignConfig(nr_seeds=3, seed_base=10)
    assert config.seeds == [10, 11, 12]
