"""Sharded work-queue mode: claims, steals, merge identity."""

import json
import os
import subprocess
import sys
import time

from repro.campaign import CampaignConfig, run_campaign
from repro.campaign.results import findings_digest, load_records
from repro.campaign.shard import (Shard, merge_shards, pending_shards,
                                  plan_shards, run_sharded_campaign,
                                  shard_config, shard_results_path,
                                  try_claim)

SCALE = 0.08


def _config(tmp_path, **overrides) -> CampaignConfig:
    settings = dict(nr_seeds=6, seed_base=1, jobs=1, base_seed=2021,
                    mutations_per_seed=3, scale=SCALE,
                    output=str(tmp_path / "results.jsonl"))
    settings.update(overrides)
    return CampaignConfig(**settings)


def test_plan_shards_covers_range_exactly_once():
    shards = plan_shards(CampaignConfig(nr_seeds=7, seed_base=3),
                         shard_size=3)
    assert [shard.index for shard in shards] == [0, 1, 2]
    seeds = [seed for shard in shards for seed in shard.seeds]
    assert seeds == list(range(3, 10))
    assert shards[-1].nr_seeds == 1   # short tail shard


def test_shard_results_path_derives_from_stem():
    assert shard_results_path("out/results.jsonl", 2) == \
        "out/results.shard-2.jsonl"
    assert shard_results_path("results", 0) == "results.shard-0.jsonl"


def test_claim_is_exclusive_and_done_blocks_reclaim(tmp_path):
    shard = Shard(0, 1, 3)
    first = try_claim(str(tmp_path), shard)
    assert first is not None and first["generation"] == 0
    # a second claimant loses while the claim is fresh
    assert try_claim(str(tmp_path), shard) is None


def test_stale_claim_is_stolen_with_bumped_generation(tmp_path):
    shard = Shard(0, 1, 3)
    claim = try_claim(str(tmp_path), shard)
    # age the claim past the threshold: the owner is presumed dead
    claim_path = tmp_path / "claim-0.json"
    body = json.loads(claim_path.read_text())
    body["claimed_at"] = time.time() - 1000.0
    claim_path.write_text(json.dumps(body))
    stolen = try_claim(str(tmp_path), shard, stale_after_s=60.0)
    assert stolen is not None
    assert stolen["generation"] == claim["generation"] + 1


def test_done_shard_is_never_stolen(tmp_path):
    shard = Shard(0, 1, 3)
    try_claim(str(tmp_path), shard)
    (tmp_path / "done-0.json").write_text("{}")
    assert try_claim(str(tmp_path), shard, stale_after_s=0.0) is None


def test_sharded_run_merges_identical_to_inline(tmp_path):
    inline = _config(tmp_path / "inline")
    run_campaign(inline)

    sharded = _config(tmp_path / "sharded")
    shard_dir = str(tmp_path / "queue")
    nr_run = run_sharded_campaign(sharded, shard_dir, shard_size=2)
    assert nr_run == 3
    assert pending_shards(sharded, shard_dir, shard_size=2) == []
    summary = merge_shards(sharded, shard_size=2)
    assert summary.nr_ok == 6
    assert findings_digest(load_records(inline.output)) == \
        findings_digest(load_records(sharded.output))


def test_two_concurrent_runners_claim_disjoint_ranges(tmp_path):
    """Two independent processes drain one queue cooperatively."""
    output = str(tmp_path / "results.jsonl")
    shard_dir = str(tmp_path / "queue")
    script = (
        "import sys\n"
        "from repro.campaign import CampaignConfig\n"
        "from repro.campaign.shard import run_sharded_campaign\n"
        f"config = CampaignConfig(nr_seeds=6, scale={SCALE},\n"
        f"    mutations_per_seed=3, output={output!r})\n"
        f"nr = run_sharded_campaign(config, {shard_dir!r},\n"
        "    shard_size=2)\n"
        "print('SHARDS', nr)\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")])
    procs = [subprocess.Popen([sys.executable, "-c", script],
                              stdout=subprocess.PIPE, env=env,
                              text=True) for _ in range(2)]
    counts = []
    for proc in procs:
        out, _ = proc.communicate(timeout=300)
        assert proc.returncode == 0, out
        counts.append(int(out.split("SHARDS")[-1].strip()))
    # every shard ran exactly once, split across the two runners
    assert sum(counts) == 3

    config = _config(tmp_path)
    assert pending_shards(config, shard_dir, shard_size=2) == []
    merged = merge_shards(config, shard_size=2)
    assert merged.nr_ok == 6

    inline = _config(tmp_path / "inline")
    run_campaign(inline)
    assert findings_digest(load_records(inline.output)) == \
        findings_digest(load_records(config.output))


def test_killed_runner_range_is_reclaimable(tmp_path):
    """A claim with no progress and no done marker goes stale and a
    later runner re-claims and completes the seeds."""
    config = _config(tmp_path)
    shard_dir = str(tmp_path / "queue")
    os.makedirs(shard_dir)
    shards = plan_shards(config, shard_size=2)
    # simulate a runner that claimed shard 0 then was SIGKILLed
    dead = try_claim(shard_dir, shards[0])
    assert dead is not None
    body = json.loads((tmp_path / "queue" / "claim-0.json").read_text())
    body["claimed_at"] = time.time() - 1000.0
    (tmp_path / "queue" / "claim-0.json").write_text(json.dumps(body))

    nr_run = run_sharded_campaign(config, shard_dir, shard_size=2,
                                  stale_after_s=60.0)
    assert nr_run == 3   # stolen shard 0 plus shards 1 and 2
    summary = merge_shards(config, shard_size=2)
    assert summary.nr_ok == 6


def test_stolen_shard_resumes_partial_results(tmp_path):
    """A dead owner's landed records are kept, not re-run."""
    config = _config(tmp_path)
    shards = plan_shards(config, shard_size=3)
    sub = shard_config(config, shards[0])
    assert sub.resume and sub.seeds == [1, 2, 3]
    # the dead owner completed seed 1 before dying
    run_campaign(CampaignConfig(nr_seeds=1, seed_base=1, scale=SCALE,
                                mutations_per_seed=3,
                                output=sub.output))
    before = load_records(sub.output)
    progressed = []
    run_campaign(sub, progress=progressed.append)
    assert sorted(r["seed"] for r in progressed) == [2, 3]
    after = load_records(sub.output)
    assert after[1] == before[1]


def test_merge_prefers_completed_records(tmp_path):
    config = _config(tmp_path, nr_seeds=2)
    path = shard_results_path(config.output, 0)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(json.dumps({"seed": 1, "status": "crash",
                                 "error": "dead owner"}) + "\n")
    run_campaign(shard_config(config, plan_shards(config,
                                                  shard_size=2)[0]))
    merge_shards(config, shard_size=2)
    merged = load_records(config.output)
    assert merged[1]["status"] == "ok"
    assert merged[2]["status"] == "ok"


def test_merge_warns_on_missing_seeds(tmp_path, capsys):
    config = _config(tmp_path)
    # only shard 1 (seeds 3-4) ever ran
    run_campaign(shard_config(config, plan_shards(config,
                                                  shard_size=2)[1]))
    summary = merge_shards(config, shard_size=2)
    assert summary.nr_seeds == 2
    assert "missing 4 seed(s)" in capsys.readouterr().err
