"""Shared base-corpus snapshots and warm-worker batched dispatch."""

import os

import pytest

from repro import faults
from repro.campaign import CampaignConfig, run_campaign
from repro.campaign import snapshot as snapshot_store
from repro.campaign.mutate import CorpusMutator
from repro.campaign.results import findings_digest, load_records
from repro.campaign.runner import _batch_size
from repro.faults import FaultSpec, SiteRule

SCALE = 0.08


@pytest.fixture(autouse=True)
def _clean_engine():
    yield
    faults.uninstall()


def _config(tmp_path, **overrides) -> CampaignConfig:
    settings = dict(nr_seeds=6, seed_base=1, jobs=1, base_seed=2021,
                    mutations_per_seed=3, scale=SCALE,
                    output=str(tmp_path / "results.jsonl"))
    settings.update(overrides)
    return CampaignConfig(**settings)


# -- the snapshot store ------------------------------------------------------


def test_materialize_load_round_trip(tmp_path):
    mutator = CorpusMutator(2021, scale=SCALE)
    directory = snapshot_store.materialize(mutator, str(tmp_path))
    assert snapshot_store.is_complete(directory)
    tree, manifest = snapshot_store.load(directory)
    base_tree, base_manifest = mutator.base_view()
    assert tree.files == base_tree.files
    assert set(manifest.sites) == set(base_manifest.sites)


def test_materialize_is_idempotent(tmp_path):
    mutator = CorpusMutator(2021, scale=SCALE)
    first = snapshot_store.materialize(mutator, str(tmp_path))
    stamp = os.stat(os.path.join(first, "index.json")).st_mtime_ns
    second = snapshot_store.materialize(mutator, str(tmp_path))
    assert first == second
    assert os.stat(os.path.join(first,
                                "index.json")).st_mtime_ns == stamp


def test_snapshot_is_content_addressed(tmp_path):
    small = snapshot_store.snapshot_dir(
        str(tmp_path), CorpusMutator(2021, scale=SCALE))
    other_seed = snapshot_store.snapshot_dir(
        str(tmp_path), CorpusMutator(7, scale=SCALE))
    assert small != other_seed


def test_adopt_rejects_mismatched_and_torn_snapshots(tmp_path):
    mutator = CorpusMutator(2021, scale=SCALE)
    directory = snapshot_store.materialize(mutator, str(tmp_path))
    # wrong configuration: different base seed must refuse the adopt
    assert not snapshot_store.adopt(CorpusMutator(7, scale=SCALE),
                                    directory)
    # torn blob: fall back, never crash
    with open(os.path.join(directory, "corpus.bin"), "wb") as handle:
        handle.write(b"x")
    assert not snapshot_store.adopt(CorpusMutator(2021, scale=SCALE),
                                    directory)
    # missing snapshot entirely
    assert not snapshot_store.adopt(mutator, str(tmp_path / "nope"))


def test_adopted_base_derives_identical_mutants(tmp_path):
    cold = CorpusMutator(2021, scale=SCALE)
    directory = snapshot_store.materialize(cold, str(tmp_path))
    warm = CorpusMutator(2021, scale=SCALE)
    assert snapshot_store.adopt(warm, directory)
    a = cold.derive(11, 4)
    b = warm.derive(11, 4)
    assert a.tree.files == b.tree.files
    assert [m.to_json() for m in a.mutations] == \
        [m.to_json() for m in b.mutations]


def test_derive_never_mutates_the_shared_base(tmp_path):
    mutator = CorpusMutator(2021, scale=SCALE)
    base_tree, _ = mutator.base_view()
    before = dict(base_tree.files)
    mutator.derive(3, 6)
    after, _ = mutator.base_view()
    assert after.files == before
    assert after is base_tree   # still the same zero-copy object


# -- adaptive batch sizing ---------------------------------------------------


def test_batch_size_targets_work_per_task():
    # no measurement yet: probe with single-seed batches
    assert _batch_size(None, 100, 4, target_s=0.05, max_batch=64) == 1
    # 1ms seeds: 50 seeds reach the 50ms target
    assert _batch_size(0.001, 1000, 4, target_s=0.05,
                       max_batch=64) == 50
    # slow seeds: no batching needed
    assert _batch_size(1.0, 1000, 4, target_s=0.05, max_batch=64) == 1
    # the cap wins over the time target
    assert _batch_size(0.0001, 10000, 4, target_s=0.05,
                       max_batch=64) == 64
    # fairness: never hand one worker more than its share of the tail
    assert _batch_size(0.001, 8, 4, target_s=0.05, max_batch=64) == 1


# -- batched parallel dispatch keeps findings byte-identical -----------------


def test_batched_parallel_digest_matches_inline(tmp_path):
    inline = run_campaign(_config(tmp_path / "a"))
    # force multi-seed batches regardless of measured seed cost
    parallel = run_campaign(_config(tmp_path / "b", jobs=2,
                                    batch_target_s=30.0))
    assert inline.nr_ok == parallel.nr_ok == 6
    assert findings_digest(load_records(
        str(tmp_path / "a" / "results.jsonl"))) == \
        findings_digest(load_records(
            str(tmp_path / "b" / "results.jsonl")))


def test_batch_crash_fault_fails_whole_batch_and_retry_heals(tmp_path):
    spec = FaultSpec([SiteRule("campaign.batch.crash", at_steps=(0,),
                               on_attempt=0)])
    clean = run_campaign(_config(tmp_path / "clean"))
    config = _config(tmp_path / "faulty", jobs=2, retry=1,
                     batch_target_s=30.0,
                     fault_spec=spec.to_json())
    summary = run_campaign(config)
    assert summary.all_ok
    records = load_records(config.output)
    # the audit trail shows batch-fault records that were retried
    raw = [r for r in _all_lines(config.output)
           if r.get("status") == "fault"]
    assert raw and all(r.get("will_retry") for r in raw)
    assert all("campaign.batch.crash" in r["error"] for r in raw)
    assert findings_digest(load_records(
        str(tmp_path / "clean" / "results.jsonl"))) == \
        findings_digest(records)


def _all_lines(path):
    import json
    out = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
