"""CodeIndex: symbol cross-references over a source tree."""

from repro.core.spade.cindex import CodeIndex
from repro.corpus.generate import SourceTree


def make_tree():
    tree = SourceTree()
    tree.add("a.c", """
struct widget {
    u32 id;
};
static int helper(void *buf, u32 len)
{
    return 0;
}
static int caller_one(struct widget *w)
{
    helper(w, 4);
    return 0;
}
""")
    tree.add("b.c", """
static int caller_two(void *p)
{
    helper(p, 8);
    return 0;
}
""")
    tree.add("notes.txt", "not C, must be ignored")
    return tree


def test_functions_and_structs_indexed():
    index = CodeIndex(make_tree())
    assert "widget" in index.structs
    assert "helper" in index.functions
    assert index.nr_files == 2  # the .txt is skipped
    assert index.nr_functions == 3


def test_callers_cross_file():
    index = CodeIndex(make_tree())
    callers = index.callers_of("helper")
    assert {r.caller.name for r in callers} == {"caller_one",
                                                "caller_two"}
    assert {r.file for r in callers} == {"a.c", "b.c"}
    only_a = index.calls_to("helper", within="a.c")
    assert len(only_a) == 1 and only_a[0].caller.name == "caller_one"


def test_unknown_function_no_callers():
    index = CodeIndex(make_tree())
    assert index.callers_of("ghost") == []


def test_first_struct_definition_wins():
    tree = SourceTree()
    tree.add("a.c", "struct s { u32 first; };")
    tree.add("b.c", "struct s { u64 second; };")
    index = CodeIndex(tree)
    assert index.structs["s"].fields[0].name == "first"


def test_parse_errors_collected_not_fatal():
    tree = SourceTree()
    tree.add("bad.c", "/* unterminated comment")
    tree.add("good.c", "static int ok(void)\n{\n    return 1;\n}\n")
    index = CodeIndex(tree)
    assert "bad.c" in index.parse_errors
    assert "ok" in index.functions
