"""CLI contract: --version, campaign subcommand, uniform exit codes.

Bad input always exits 2 with a message on stderr, success exits 0 --
regardless of which subcommand the bad input reached.
"""

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert f"repro-dma {__version__}" in capsys.readouterr().out


def test_unknown_attack_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["attack", "teleport"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_audit_nonexistent_tree_exits_2(capsys, tmp_path):
    code = main(["audit", "--tree", str(tmp_path / "nope")])
    assert code == 2
    assert "not a directory" in capsys.readouterr().err


def test_audit_empty_tree_exits_2(capsys, tmp_path):
    code = main(["audit", "--tree", str(tmp_path)])
    assert code == 2
    assert "no C sources" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["sanitize", "--rounds", "0"],
    ["sanitize", "--rounds", "-3"],
    ["sanitize", "--rounds", "many"],
    ["attack", "ringflood", "--profile-boots", "0"],
    ["campaign", "--seeds", "0"],
    ["campaign", "--jobs", "-1"],
    ["campaign", "--timeout", "0"],
    ["campaign", "--scale", "-0.5"],
    ["campaign", "--mutations", "0"],
])
def test_bad_numeric_input_exits_2(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    assert "error" in capsys.readouterr().err


def test_campaign_unwritable_output_exits_2(capsys):
    code = main(["campaign", "--seeds", "1",
                 "--output", "/dev/null/x.jsonl"])
    assert code == 2
    assert "--output" in capsys.readouterr().err


def test_campaign_parser_defaults():
    args = build_parser().parse_args(["campaign"])
    assert args.seeds == 20 and args.jobs == 1
    assert args.timeout == 120.0 and args.scale == 1.0
    assert args.output == "campaign/results.jsonl"
    assert not args.resume and not args.shrink


def test_cli_campaign_smoke(capsys, tmp_path):
    out = tmp_path / "results.jsonl"
    code = main(["campaign", "--seeds", "2", "--jobs", "1",
                 "--scale", "0.08", "--mutations", "2",
                 "--output", str(out)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "campaign: 2 seeds (2 ok, 0 failed)" in captured
    assert "SPADE (static, per exposure label)" in captured
    assert "D-KASAN (dynamic, per corpus category)" in captured
    records = [json.loads(line)
               for line in out.read_text().splitlines()]
    assert [record["seed"] for record in records] == [1, 2]
    assert all(record["status"] == "ok" for record in records)


def test_cli_campaign_resume_and_shrink(capsys, tmp_path):
    out = tmp_path / "results.jsonl"
    base = ["campaign", "--seeds", "2", "--scale", "0.08",
            "--mutations", "4", "--output", str(out)]
    assert main(base) == 0
    capsys.readouterr()
    # resume: zero redundant work, shrink minimizes a disagreeing seed
    code = main(base + ["--resume", "--shrink"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "seed 1:" not in captured.split("campaign:")[0]
    if "shrunk seed" in captured:
        assert "mutation(s) in" in captured
    assert len(out.read_text().splitlines()) == 2
