"""CLI: audit traces, single-step and stale-reuse paths, parser."""

import pytest

from repro.cli import build_parser, main


def test_cli_audit_with_trace(capsys):
    assert main(["audit", "--trace", "nvme"]) == 0
    out = capsys.readouterr().out
    assert "SPOOFABLE 931" in out
    assert "precision 1.000" in out


def test_cli_audit_trace_no_match(capsys):
    assert main(["audit", "--trace", "zz-no-such-driver"]) == 0
    out = capsys.readouterr().out
    assert "no findings in files matching" in out


def test_cli_single_step(capsys):
    assert main(["attack", "single-step"]) == 0
    out = capsys.readouterr().out
    assert "escalated: True" in out


def test_cli_stale_reuse_strict_blocked(capsys):
    code = main(["attack", "stale-reuse", "--iommu-mode", "strict"])
    assert code == 1
    out = capsys.readouterr().out
    assert "FAULTED" in out


def test_cli_memdump(capsys):
    assert main(["attack", "memdump"]) == 0
    out = capsys.readouterr().out
    assert "dumped" in out


def test_cli_forward_requires_forwarding(capsys):
    code = main(["attack", "forward"])  # victim not forwarding
    assert code == 1


def test_cli_forward_with_forwarding(capsys):
    assert main(["attack", "forward", "--forwarding"]) == 0


def test_parser_rejects_unknown_attack():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["attack", "teleport"])


def test_parser_victim_flags():
    args = build_parser().parse_args(
        ["attack", "ringflood", "--iommu-mode", "strict", "--cet",
         "--damn", "--unmap-order", "skb_first"])
    assert args.iommu_mode == "strict"
    assert args.cet and args.damn
    assert args.unmap_order == "skb_first"
