"""SimClock: timers, periodic firing, cycle charging."""

import pytest

from repro.sim.clock import CYCLES_PER_US, SimClock


def test_time_starts_at_zero():
    assert SimClock().now_us == 0.0


def test_advance_moves_time():
    clock = SimClock()
    clock.advance_us(12.5)
    assert clock.now_us == 12.5


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance_us(-1.0)


def test_one_shot_timer_fires_at_deadline():
    clock = SimClock()
    fired = []
    clock.call_at(5.0, lambda: fired.append(clock.now_us))
    clock.advance_us(4.9)
    assert fired == []
    clock.advance_us(0.2)
    assert fired == [5.0]


def test_call_after_is_relative():
    clock = SimClock()
    clock.advance_us(10.0)
    fired = []
    clock.call_after(3.0, lambda: fired.append(clock.now_us))
    clock.advance_us(3.0)
    assert fired == [13.0]


def test_timer_in_past_rejected():
    clock = SimClock()
    clock.advance_us(10.0)
    with pytest.raises(ValueError):
        clock.call_at(5.0, lambda: None)


def test_timers_fire_in_deadline_order():
    clock = SimClock()
    order = []
    clock.call_at(7.0, lambda: order.append("b"))
    clock.call_at(3.0, lambda: order.append("a"))
    clock.call_at(9.0, lambda: order.append("c"))
    clock.advance_us(10.0)
    assert order == ["a", "b", "c"]


def test_periodic_timer_fires_every_period():
    clock = SimClock()
    fired = []
    clock.call_every(2.0, lambda: fired.append(clock.now_us))
    clock.advance_us(7.0)
    assert fired == [2.0, 4.0, 6.0]


def test_cancelled_timer_does_not_fire():
    clock = SimClock()
    fired = []
    handle = clock.call_at(5.0, lambda: fired.append(1))
    handle.cancel()
    clock.advance_us(10.0)
    assert fired == []
    assert handle.cancelled


def test_cancelled_periodic_stops():
    clock = SimClock()
    fired = []
    handle = clock.call_every(1.0, lambda: fired.append(clock.now_us))
    clock.advance_us(2.5)
    handle.cancel()
    clock.advance_us(5.0)
    assert fired == [1.0, 2.0]


def test_charge_cycles_advances_time():
    clock = SimClock()
    clock.charge_cycles(CYCLES_PER_US * 3)
    assert clock.now_us == pytest.approx(3.0)
    assert clock.cycles == CYCLES_PER_US * 3


def test_charge_negative_cycles_rejected():
    with pytest.raises(ValueError):
        SimClock().charge_cycles(-1)


def test_timer_callback_sees_deadline_time():
    """Time observed inside a callback is the deadline, not the target."""
    clock = SimClock()
    seen = []
    clock.call_at(2.0, lambda: seen.append(clock.now_us))
    clock.advance_us(100.0)
    assert seen == [2.0]
    assert clock.now_us == 100.0


def test_periodic_zero_period_rejected():
    with pytest.raises(ValueError):
        SimClock().call_every(0.0, lambda: None)
