"""Corpus generator: composition, determinism, ground truth."""

from repro.corpus import CorpusGenerator
from repro.corpus.linux50 import LINUX50_COMPOSITION, expected_table2
from repro.corpus.nvme_fc import NVME_FC_PATH


def test_composition_matches_paper_marginals():
    """The spec itself realizes Table 2's numbers."""
    expected = expected_table2()
    assert expected["total"] == (1019, 447)
    assert expected["callbacks_exposed"] == (156, 57)
    assert expected["skb_shared_info_mapped"] == (464, 232)
    assert expected["callbacks_exposed_directly"] == (54, 28)
    assert expected["private_data_mapped"] == (19, 7)
    assert expected["stack_mapped"] == (3, 3)
    assert expected["type_c"] == (344, 227)
    assert expected["build_skb_used"] == (46, 40)
    assert expected["vulnerable"][0] == 742


def test_manifest_matches_composition(corpus):
    _tree, manifest = corpus
    rows = manifest.table2_rows()
    expected = expected_table2()
    for key in ("total", "callbacks_exposed", "skb_shared_info_mapped",
                "callbacks_exposed_directly", "private_data_mapped",
                "stack_mapped", "type_c", "build_skb_used"):
        assert rows[key] == expected[key], key
    assert rows["vulnerable"][0] == 742


def test_tree_shape(corpus):
    tree, manifest = corpus
    assert len(tree.paths(suffix=".c")) == 447
    assert len(tree.paths(suffix=".h")) == 6
    assert manifest.nr_calls == 1019
    assert tree.total_lines > 20_000


def _manifest_identity(manifest):
    return [(s.path, s.line, s.category, s.exposures, s.vulnerable)
            for s in manifest.sites]


def test_generation_is_deterministic():
    """Same seed must give a byte-identical tree and manifest --
    campaign resume and shrinking both rely on exact regeneration."""
    a_tree, a_manifest = CorpusGenerator(seed=99).generate()
    b_tree, b_manifest = CorpusGenerator(seed=99).generate()
    assert a_tree.files == b_tree.files  # full text, every file
    assert _manifest_identity(a_manifest) == _manifest_identity(b_manifest)


def test_different_seeds_differ():
    a_tree, a_manifest = CorpusGenerator(seed=1).generate()
    b_tree, b_manifest = CorpusGenerator(seed=2).generate()
    assert a_tree.files != b_tree.files
    assert _manifest_identity(a_manifest) != _manifest_identity(b_manifest)


def test_scaled_generation_is_deterministic():
    from repro.corpus.linux50 import scaled_composition
    composition = scaled_composition(0.1)
    a_tree, a_manifest = CorpusGenerator(
        seed=7, composition=composition).generate()
    b_tree, b_manifest = CorpusGenerator(
        seed=7, composition=composition).generate()
    assert a_tree.files == b_tree.files
    assert _manifest_identity(a_manifest) == _manifest_identity(b_manifest)
    assert 0 < a_manifest.nr_calls < 1019


def test_nvme_fc_included_once(corpus):
    tree, manifest = corpus
    assert NVME_FC_PATH in tree.files
    sites = manifest.by_path(NVME_FC_PATH)
    assert len(sites) == 2
    assert all(s.category == "callback_direct" for s in sites)
    assert all("callback_spoof" in s.exposures for s in sites)


def test_call_site_lines_point_at_calls(corpus):
    tree, manifest = corpus
    for site in manifest.sites[:100]:
        line_text = tree.read(site.path).splitlines()[site.line - 1]
        assert "dma_map_single(" in line_text


def test_every_file_tokenizes(corpus):
    from repro.core.spade.ctokens import tokenize
    tree, _ = corpus
    for path in tree.paths(suffix=".c"):
        assert tokenize(tree.read(path))


def test_categories_cover_expected_counts(corpus):
    _tree, manifest = corpus
    counts = manifest.category_counts()
    for spec in LINUX50_COMPOSITION:
        assert counts[spec.name] == spec.nr_calls


def test_write_to_dir(tmp_path, corpus):
    tree, _ = corpus
    tree.write_to_dir(str(tmp_path))
    assert (tmp_path / NVME_FC_PATH).exists()
    assert (tmp_path / "include/linux/skbuff.h").exists()
