"""repro.coverage: deterministic signatures, the persistent map,
saturation tracking, and the observability wiring around them."""

import json
import warnings

import pytest

from repro.campaign import (CampaignConfig, format_summary,
                            run_campaign)
from repro.campaign.results import load_records
from repro.campaign.runner import run_seed
from repro.campaign.shard import (format_seed_ranges, merge_shards,
                                  missing_seeds_message,
                                  run_sharded_campaign,
                                  shard_results_path)
from repro.coverage import (CoverageCollector, CoverageMap,
                            SaturationTracker, coverage_digest,
                            coverage_lane, coverage_map_path,
                            feature_group, format_saturation)
from repro.errors import CampaignError

SCALE = 0.08


def _config(tmp_path, **overrides) -> CampaignConfig:
    settings = dict(nr_seeds=3, seed_base=1, jobs=1, base_seed=2021,
                    mutations_per_seed=3, scale=SCALE,
                    output=str(tmp_path / "results.jsonl"))
    settings.update(overrides)
    return CampaignConfig(**settings)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One shared jobs=1 campaign every determinism test compares to."""
    tmp = tmp_path_factory.mktemp("cov-baseline")
    config = _config(tmp)
    summary = run_campaign(config)
    assert summary.all_ok
    return config, summary


def _coverage_by_seed(path: str) -> dict[int, dict]:
    return {seed: record["coverage"]
            for seed, record in load_records(path).items()
            if record.get("status") == "ok"}


# -- the signature ----------------------------------------------------------

def test_run_seed_coverage_is_deterministic():
    first = run_seed(4, base_seed=2021, mutations_per_seed=2,
                     scale=SCALE)
    second = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=SCALE)
    assert first["coverage"] == second["coverage"]
    assert len(first["coverage"]["digest"]) == 64
    assert first["coverage"]["nr_features"] == \
        len(first["coverage"]["features"])


def test_signature_is_independent_of_ring_capacity():
    # the collector streams events before the drop-oldest ring evicts,
    # so --trace-events 0 and --trace-events 64 must agree
    untraced = run_seed(4, base_seed=2021, mutations_per_seed=2,
                        scale=SCALE, trace_events=0)
    traced = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=SCALE, trace_events=64)
    assert untraced["coverage"] == traced["coverage"]


def test_coverage_opt_out_drops_the_record_field():
    record = run_seed(4, base_seed=2021, mutations_per_seed=2,
                      scale=SCALE, coverage=False)
    assert record["status"] == "ok"
    assert "coverage" not in record


def test_digest_is_backend_aware_and_default_normalized():
    features = {"dma/map": 3, "iommu/stale_hit": 1}
    assert coverage_lane(None) == "intel-vtd"
    assert coverage_digest(features) == \
        coverage_digest(features, backend="intel-vtd")
    assert coverage_digest(features) != \
        coverage_digest(features, backend="arm-smmuv3")


def test_feature_group_prefix():
    assert feature_group("dma/map") == "dma"
    assert feature_group("site/stack@a.c:3") == "site"
    assert feature_group("bare") == "other"


def test_collector_derives_iotlb_window_and_site_features():
    from repro.trace.recorder import TraceRecorder
    recorder = TraceRecorder(capacity=4)
    recorder.bind_clock(type("Clock", (), {"now_us": 0.0})())
    collector = CoverageCollector()
    recorder.add_observer(collector.feed)
    clock = recorder._clock
    recorder.emit("iommu", "stale_hit", write=True, iova=0)
    recorder.emit("iommu", "stale_hit", write=False, iova=0)
    recorder.emit("iommu", "fq_defer", iova_pfn=1, nr_pending=1)
    clock.now_us = 10.0
    recorder.emit("iommu", "fq_drain", nr_pending=5, iotlb_dropped=2)
    recorder.emit("iommu", "inv_sync", iova_pfn=2)
    recorder.emit("dkasan", "stack", site="a.c:3")
    recorder.emit("dma", "map", iova=0)
    features = collector.features
    assert features["iotlb/stale-write"] == 1
    assert features["iotlb/stale-read"] == 1
    assert features["window/b4"] == 1          # 10us -> bucket 4
    assert features["iotlb/drain-drop:b2"] == 1
    assert features["iotlb/drain-batch:b3"] == 1
    assert features["window/sync"] == 1
    assert features["site/stack@a.c:3"] == 1
    assert features["dma/map"] == 1
    # ring capacity 4 wrapped twice over -- irrelevant to the stream
    assert recorder.nr_events <= 4


# -- campaign wiring --------------------------------------------------------

def test_campaign_attaches_coverage_and_saves_the_map(baseline):
    config, summary = baseline
    by_seed = _coverage_by_seed(config.output)
    assert set(by_seed) == {1, 2, 3}
    for coverage in by_seed.values():
        assert set(coverage) == {"digest", "nr_features", "features"}
    assert summary.coverage_seeds == 3
    assert summary.coverage_features == len(
        {name for cov in by_seed.values() for name in cov["features"]})
    assert f"coverage: {summary.coverage_features} unique features" \
        in format_summary(summary)
    saved = CoverageMap.load(coverage_map_path(config.output))
    assert saved.digest == CoverageMap.from_results(config.output).digest


def test_parallel_campaign_coverage_matches_inline(baseline, tmp_path):
    config, _summary = baseline
    parallel = _config(tmp_path, jobs=2)
    assert run_campaign(parallel).all_ok
    assert _coverage_by_seed(parallel.output) == \
        _coverage_by_seed(config.output)
    assert open(coverage_map_path(parallel.output)).read() == \
        open(coverage_map_path(config.output)).read()


def test_sharded_merge_map_is_byte_identical(baseline, tmp_path):
    config, _summary = baseline
    sharded = _config(tmp_path)
    run_sharded_campaign(sharded, str(tmp_path / "queue"),
                         shard_size=2)
    merge_shards(sharded, shard_size=2)
    assert _coverage_by_seed(sharded.output) == \
        _coverage_by_seed(config.output)
    assert open(coverage_map_path(sharded.output)).read() == \
        open(coverage_map_path(config.output)).read()


def test_recoverable_fault_plan_keeps_coverage_identical(baseline,
                                                         tmp_path):
    from repro.faults import FaultSpec, SiteRule
    config, _summary = baseline
    spec = FaultSpec([SiteRule("campaign.worker.crash", at_steps=(0,),
                               on_attempt=0)])
    faulted = _config(tmp_path, fault_spec=spec.to_json(), retry=1)
    assert run_campaign(faulted).all_ok
    assert _coverage_by_seed(faulted.output) == \
        _coverage_by_seed(config.output)
    assert open(coverage_map_path(faulted.output)).read() == \
        open(coverage_map_path(config.output)).read()


def test_campaign_publishes_coverage_metrics(tmp_path):
    from repro import metrics
    config = _config(tmp_path, nr_seeds=2)
    with metrics.session() as registry:
        run_campaign(config)
        sample_names = {(s.subsystem, s.name)
                        for s in registry.samples()}
    assert ("coverage", "features_total") in sample_names
    assert ("coverage", "novel_features") in sample_names
    assert ("coverage", "saturation_seeds") in sample_names


# -- the map ----------------------------------------------------------------

def _record(seed, features, status="ok", backend=None):
    coverage = {"digest": coverage_digest(features, backend=backend),
                "features": features}
    record = {"seed": seed, "status": status, "coverage": coverage}
    if backend:
        record["backend"] = backend
    return record


def test_map_observe_counts_only_map_wide_novelty():
    cover = CoverageMap()
    assert cover.observe_record(
        _record(1, {"dma/map": 2, "dma/unmap": 2})) == 2
    assert cover.observe_record(
        _record(2, {"dma/map": 9, "iommu/stale_hit": 1})) == 1
    assert cover.observe_record(_record(3, {"dma/map": 1})) == 0
    assert cover.nr_features == 3
    assert cover.nr_seeds == 3


def test_map_ignores_failed_and_coverage_free_records():
    cover = CoverageMap()
    assert cover.observe_record({"seed": 1, "status": "error"}) == 0
    assert cover.observe_record(
        _record(2, {"dma/map": 1}, status="timeout")) == 0
    assert cover.observe_record({"seed": 3, "status": "ok"}) == 0
    assert cover.nr_seeds == 0


def test_map_merge_is_commutative_and_idempotent():
    a = CoverageMap()
    a.observe_record(_record(1, {"dma/map": 1}))
    a.observe_record(_record(2, {"dma/unmap": 1},
                             backend="arm-smmuv3"))
    b = CoverageMap()
    b.observe_record(_record(3, {"iommu/stale_hit": 1}))
    ab = CoverageMap()
    ab.merge(a)
    assert ab.merge(b) == 1
    ba = CoverageMap()
    ba.merge(b)
    ba.merge(a)
    assert ab.canonical() == ba.canonical()
    assert ab.merge(b) == 0                     # idempotent
    assert ab.lanes == ["arm-smmuv3", "intel-vtd"]


def test_map_save_load_round_trip_and_schema_gate(tmp_path):
    cover = CoverageMap()
    cover.observe_record(_record(7, {"dma/map": 4, "window/b3": 1}))
    path = str(tmp_path / "map.coverage.json")
    cover.save(path)
    loaded = CoverageMap.load(path)
    assert loaded.canonical() == cover.canonical()
    assert loaded.digest == cover.digest
    with open(path, "w") as handle:
        json.dump({"schema": 99, "lanes": {}}, handle)
    with pytest.raises(CampaignError):
        CoverageMap.load(path)


def test_map_first_seen_is_order_free():
    cover = CoverageMap()
    cover.observe_record(_record(5, {"dma/map": 1}))
    cover.observe_record(_record(2, {"dma/map": 1}))
    stats = cover.feature_stats()
    assert stats["dma/map"] == {"count": 2, "nr_seeds": 2,
                                "first_seen": ["intel-vtd", 2]}


def test_map_seed_ranking_prefers_unique_features():
    cover = CoverageMap()
    cover.observe_record(_record(1, {"dma/map": 1}))
    cover.observe_record(_record(2, {"dma/map": 1,
                                     "iommu/stale_hit": 1}))
    top = cover.seed_ranking()[0]
    assert (top["seed"], top["unique_features"]) == (2, 1)


def test_coverage_map_path_rides_beside_the_results():
    assert coverage_map_path("campaign/results.jsonl") == \
        "campaign/results.coverage.json"


# -- saturation -------------------------------------------------------------

def test_saturation_tracker_rates_and_plateau():
    clock = [0.0]
    tracker = SaturationTracker(plateau_after=2,
                                clock=lambda: clock[0])
    clock[0] = 2.0
    tracker.feed(10)
    assert tracker.new_features_per_s == 5.0
    assert tracker.new_features_per_seed == 10.0
    assert not tracker.plateaued
    tracker.feed(0)
    tracker.feed(0)
    assert tracker.plateaued
    line = format_saturation(tracker)
    assert "coverage: 10 features" in line
    assert "PLATEAU (2 seeds without a new feature)" in line
    tracker.feed(1)
    assert not tracker.plateaued


def test_render_coverage_stats_block():
    from repro.report import render_coverage_stats
    cover = CoverageMap()
    cover.observe_record(_record(1, {"dma/map": 3, "site/stack@a:1": 1}))
    text = render_coverage_stats(cover)
    assert text.startswith("coverage_stats:")
    assert "Features:" in text and "lane intel-vtd" in text
    assert "Group_dma:" in text and "Group_site:" in text


# -- CLI --------------------------------------------------------------------

def test_cli_report_diff_merge_top(baseline, tmp_path, capsys):
    from repro.cli import main
    config, _summary = baseline
    map_path = coverage_map_path(config.output)

    assert main(["coverage", "report", map_path]) == 0
    out = capsys.readouterr().out
    assert "coverage_stats:" in out
    nr_subsystems = int(out.split("subsystems represented: ")[1]
                        .split(" ")[0])
    assert nr_subsystems >= 4

    # a results .jsonl is accepted wherever a map is (same content)
    assert main(["coverage", "report", config.output]) == 0
    assert "coverage_stats:" in capsys.readouterr().out

    assert main(["coverage", "diff", map_path, map_path]) == 0
    out = capsys.readouterr().out
    assert f"only in {map_path}: 0" in out

    half = CoverageMap.from_records(
        {seed: record for seed, record
         in load_records(config.output).items() if seed <= 1})
    rest = CoverageMap.from_records(
        {seed: record for seed, record
         in load_records(config.output).items() if seed > 1})
    half_path, rest_path = (str(tmp_path / "half.coverage.json"),
                            str(tmp_path / "rest.coverage.json"))
    half.save(half_path)
    rest.save(rest_path)
    merged_path = str(tmp_path / "merged.coverage.json")
    assert main(["coverage", "merge", half_path, rest_path,
                 "--output", merged_path]) == 0
    capsys.readouterr()
    assert open(merged_path).read() == open(map_path).read()

    assert main(["coverage", "top", map_path, "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "unique=" in out and len(out.strip().splitlines()) == 3


def test_cli_coverage_bad_input(tmp_path, capsys):
    from repro.cli import main
    missing = str(tmp_path / "nope.coverage.json")
    assert main(["coverage", "report", missing]) == 2
    assert "coverage report:" in capsys.readouterr().err


def test_serve_replay_carries_the_coverage_digest():
    from repro.serve.handlers import handle_replay
    response = handle_replay({"seed": 4, "base_seed": 2021,
                              "mutations": 2, "scale": SCALE,
                              "phys_mb": 256, "backend": None})
    assert response["coverage_digest"] == \
        response["record"]["coverage"]["digest"]


# -- satellite: merge names its missing seeds -------------------------------

def test_format_seed_ranges_compresses_runs():
    assert format_seed_ranges([3, 4, 5, 6, 7, 12, 40, 41]) == \
        "3-7, 12, 40-41"
    assert format_seed_ranges([9]) == "9"
    assert format_seed_ranges([]) == ""


def test_missing_seeds_message_names_the_ids():
    message = missing_seeds_message([4, 5, 6, 9])
    assert "missing 4 seed(s)" in message
    assert "4-6, 9" in message


def test_merge_reports_missing_seed_ids(tmp_path, capsys):
    config = _config(tmp_path, nr_seeds=4)
    # only seeds 1-2 ever ran: shard 1 (seeds 3-4) has no results file
    partial = _config(tmp_path, nr_seeds=2,
                      output=shard_results_path(config.output, 0))
    assert run_campaign(partial).all_ok
    seen = []
    merge_shards(config, shard_size=2, on_missing=seen.append)
    assert seen == [[3, 4]]
    # the default path prints the enriched message to stderr
    merge_shards(config, shard_size=2)
    err = capsys.readouterr().err
    assert "missing 2 seed(s): 3-4" in err


def test_cli_campaign_merge_surfaces_missing_seeds(tmp_path, capsys):
    from repro.cli import main
    output = str(tmp_path / "results.jsonl")
    partial = _config(tmp_path, nr_seeds=2,
                      output=shard_results_path(output, 0))
    assert run_campaign(partial).all_ok
    code = main(["campaign", "--merge", "--seeds", "4",
                 "--shard-size", "2", "--scale", str(SCALE),
                 "--mutations", "3", "--output", output,
                 "--cache-dir", "", "--heartbeat-dir", ""])
    captured = capsys.readouterr()
    assert "missing 2 seed(s): 3-4" in captured.err
    # merge still succeeds over what is there: the present records are
    # all ok, so the exit code stays 0 and the gap lives on stderr
    assert code == 0


# -- satellite: torn trailing trace line ------------------------------------

def test_load_jsonl_heals_a_torn_trailing_line(tmp_path):
    from repro.trace.export import load_jsonl
    path = str(tmp_path / "trace.jsonl")
    good = [{"seq": 0, "ts_us": 1.0, "cat": "dma", "name": "map",
             "ph": "i", "args": {}},
            {"seq": 1, "ts_us": 2.0, "cat": "dma", "name": "unmap",
             "ph": "i", "args": {}}]
    body = "".join(json.dumps(record) + "\n" for record in good)
    with open(path, "w") as handle:
        handle.write(body + '{"seq": 2, "ts_us": 3.0, "cat": "dm')
    with pytest.warns(UserWarning, match=f"byte {len(body)}"):
        events, summary = load_jsonl(path)
    assert [event.seq for event in events] == [0, 1]
    assert summary is None


def test_load_jsonl_still_raises_on_interior_corruption(tmp_path):
    from repro.trace.export import load_jsonl
    path = str(tmp_path / "trace.jsonl")
    with open(path, "w") as handle:
        handle.write('{"seq": 0, "ts_us": 1.0, "cat": "dma"\n')
        handle.write(json.dumps({"seq": 1, "ts_us": 2.0, "cat": "dma",
                                 "name": "unmap", "ph": "i",
                                 "args": {}}) + "\n")
    with pytest.raises(json.JSONDecodeError):
        load_jsonl(path)


def test_load_jsonl_intact_file_emits_no_warning(tmp_path):
    from repro.trace.export import load_jsonl
    path = str(tmp_path / "trace.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"seq": 0, "ts_us": 1.0, "cat": "dma",
                                 "name": "map", "ph": "i",
                                 "args": {}}) + "\n")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        events, _summary = load_jsonl(path)
    assert len(events) == 1


# -- satellite: analysis helpers never raise on empty/wrapped rings ---------

def test_analysis_helpers_tolerate_empty_recorder():
    from repro.trace.analysis import (derive_invalidation_windows,
                                      event_counts,
                                      stale_access_count)
    from repro.trace.recorder import TraceRecorder
    recorder = TraceRecorder(capacity=8)
    assert event_counts(recorder.events) == {}
    assert stale_access_count(recorder.events) == 0
    windows = derive_invalidation_windows(recorder.events)
    assert windows.nr_windows == 0 and windows.nr_unpaired == 0


def test_analysis_helpers_tolerate_wrapped_ring():
    from repro.trace.analysis import (derive_invalidation_windows,
                                      event_counts,
                                      stale_access_count)
    from repro.trace.recorder import TraceRecorder
    recorder = TraceRecorder(capacity=4)
    recorder.bind_clock(type("Clock", (), {"now_us": 0.0})())
    # wrap the drop-oldest ring: the fq_defer is evicted, leaving a
    # drain with no visible opener plus newer stale hits
    recorder.emit("iommu", "fq_defer", iova_pfn=1, nr_pending=1)
    for _ in range(4):
        recorder.emit("iommu", "stale_hit", write=False, iova=0)
    recorder.emit("iommu", "fq_drain", nr_pending=1, iotlb_dropped=0)
    assert recorder.dropped > 0
    events = recorder.events
    counts = event_counts(events)
    assert counts[("iommu", "stale_hit")] == 3
    assert counts[("iommu", "fq_drain")] == 1
    assert stale_access_count(events) == 3
    windows = derive_invalidation_windows(events)
    assert windows.nr_windows == 0 and windows.nr_unpaired == 0
