"""The C tokenizer and parser."""

import pytest

from repro.core.spade.cparse import parse_file
from repro.core.spade.ctokens import TokKind, tokenize
from repro.errors import AnalysisError


def test_tokenizer_basics():
    tokens = tokenize("int x = 42; // comment\nfoo(a->b);")
    texts = [t.text for t in tokens]
    assert texts == ["int", "x", "=", "42", ";", "foo", "(", "a", "->",
                     "b", ")", ";"]


def test_tokenizer_lines_and_preproc():
    tokens = tokenize('#include <x.h>\nint y;\n')
    assert tokens[0].kind == TokKind.PREPROC
    assert tokens[1].line == 2


def test_tokenizer_block_comment_spans_lines():
    tokens = tokenize("/* a\nb\nc */ int z;")
    assert tokens[0].text == "int"
    assert tokens[0].line == 3


def test_tokenizer_string_and_char():
    tokens = tokenize('char *s = "hi;there"; char c = \'x\';')
    kinds = [t.kind for t in tokens if t.kind in (TokKind.STRING,
                                                  TokKind.CHAR)]
    assert kinds == [TokKind.STRING, TokKind.CHAR]


def test_tokenizer_unterminated_comment_raises():
    with pytest.raises(AnalysisError):
        tokenize("/* never ends")


def test_parse_struct_fields():
    parsed = parse_file("t.c", """
struct demo {
    struct other *ptr;
    u32 count;
    u8 buf[64];
    void (*handler)(int x);
    void (*table[8])(void);
    struct nested inner;
};
""")
    fields = {f.name: f for f in parsed.structs["demo"].fields}
    assert fields["ptr"].type.base == "other"
    assert fields["ptr"].type.pointer_level == 1
    assert fields["buf"].type.array_len == 64
    assert fields["handler"].is_func_ptr
    assert fields["table"].is_func_ptr
    assert fields["table"].func_ptr_count == 8
    assert fields["inner"].type.pointer_level == 0


def test_parse_function_with_everything():
    parsed = parse_file("t.c", """
static int work(struct dev *d, void *buf)
{
    struct item *it;
    u8 local[16];
    dma_addr_t a;

    it = lookup(d, 5);
    a = dma_map_single(d->dma, &it->payload, 64, DMA_TO_DEVICE);
    if (!a)
        return -1;
    submit(d, a);
    return 0;
}
""")
    func = parsed.functions["work"]
    assert [p.name for p in func.params] == ["d", "buf"]
    assert func.params[1].type.base == "void"
    local_names = {d.name for d in func.locals}
    assert local_names == {"it", "local", "a"}
    assert func.find_var("local")[1].type.array_len == 16
    callees = {c.callee for c in func.calls}
    assert callees == {"lookup", "dma_map_single", "submit"}
    map_call = next(c for c in func.calls
                    if c.callee == "dma_map_single")
    assert map_call.args[1] == "& it -> payload"
    assigns = func.assignments_to("it")
    assert assigns[0].rhs_call.callee == "lookup"


def test_parse_declaration_with_initializer():
    parsed = parse_file("t.c", """
static void f(void)
{
    struct sk_buff *skb = netdev_alloc_skb(dev, 1500);
    use(skb);
}
""")
    func = parsed.functions["f"]
    assert func.find_var("skb")[0] == "local"
    assert func.assignments_to("skb")[0].rhs_call.callee == \
        "netdev_alloc_skb"


def test_method_style_calls_not_confused():
    parsed = parse_file("t.c", """
static void f(struct ops *o)
{
    run(o);
}
""")
    assert {c.callee for c in parsed.functions["f"].calls} == {"run"}


def test_prototypes_and_forward_decls_skipped():
    parsed = parse_file("t.c", """
struct fwd;
int proto(struct fwd *f);
typedef unsigned int myint;
""")
    assert parsed.structs == {}
    assert parsed.functions == {}


def test_param_index():
    parsed = parse_file("t.c", """
static int g(struct a *x, void *y, u32 z)
{
    return 0;
}
""")
    func = parsed.functions["g"]
    assert func.param_index("y") == 1
    assert func.param_index("nope") is None
