"""Kernel image, gadget scanner, executor: NX, ROP/JOP, CET."""

import pytest

from repro.cpu.exec import STOP_RIP, Executor
from repro.cpu.gadgets import GadgetScanner, decode_one
from repro.cpu.text import ENCODINGS, KernelImage, lea_rsp_rdi_ret
from repro.errors import (BadAddressError, ControlFlowViolation,
                          ExecutionFault, NxViolation)
from repro.sim.rng import DeterministicRng


@pytest.fixture(scope="module")
def image():
    return KernelImage(DeterministicRng(42))


def test_image_deterministic_per_build_seed():
    a = KernelImage(DeterministicRng(42))
    b = KernelImage(DeterministicRng(42))
    assert a.text == b.text
    assert a.symbols().keys() == b.symbols().keys()
    assert all(a.symbol(n).image_offset == b.symbol(n).image_offset
               for n in a.symbols())


def test_symbols_have_sections(image):
    assert image.symbol("commit_creds").section == "text"
    assert image.symbol("init_net").section == "data"
    assert image.symbol("init_net").image_offset >= image.text_size
    with pytest.raises(BadAddressError):
        image.symbol("no_such_symbol")


def test_function_entries_are_endbr_marked(image):
    off = image.symbol("commit_creds").image_offset
    assert image.text[off:off + 4] == bytes([0xF3, 0x0F, 0x1E, 0xFA])
    assert image.is_function_entry(off)
    assert not image.is_function_entry(off + 1)


def test_decode_known_encodings():
    for text, encoding in ENCODINGS.items():
        insn = decode_one(encoding, 0)
        assert insn is not None
        first = text.split(";")[0].strip()
        assert insn.mnemonic == first
    pivot = decode_one(lea_rsp_rdi_ret(0x10), 0)
    assert pivot.mnemonic == "lea rsp, [rdi+IMM]"
    assert pivot.imm == 0x10


def test_lea_displacement_range():
    with pytest.raises(ValueError):
        lea_rsp_rdi_ret(0x80)


def test_scanner_finds_all_planted_gadgets(image):
    """Validate the ROPgadget analogue against ground truth."""
    scanner = GadgetScanner(image.text)
    found = {(g.image_offset, g.text) for g in scanner.scan()}
    for offset, name in image.planted_gadgets():
        if name == "ret":
            assert (offset, "ret") in found
        else:
            assert any(off == offset for off, _t in found), \
                f"missed planted gadget {name} at {offset:#x}"


def test_scanner_pattern_queries(image):
    scanner = GadgetScanner(image.text)
    assert scanner.find_stack_pivot().instructions[0].imm == 0x10
    assert scanner.find_pop("rdi").text == "pop rdi; ret"
    assert scanner.find_mov_rdi_rax().text == "mov rdi, rax; ret"


def make_executor(kernel, **flags):
    return Executor(kernel.phys, kernel.addr_space, kernel.image, **flags)


def test_legit_callback_invocation(kernel):
    result = kernel.executor.invoke_callback(
        kernel.symbol_address("kfree_skb"), rdi=0x1234)
    assert result.completed
    assert result.functions_called == ["kfree_skb"]
    assert not result.escalated


def test_nx_blocks_data_execution(kernel):
    """Pointing a callback at a DMA buffer trips the NX bit (§2.4)."""
    buf = kernel.slab.kmalloc(256)
    with pytest.raises(NxViolation):
        kernel.executor.invoke_callback(buf)


def test_nx_blocks_image_data_section(kernel):
    with pytest.raises(NxViolation):
        kernel.executor.invoke_callback(kernel.init_net_address())


def test_full_rop_chain_escalates(kernel):
    """The section 6 demonstration, driven directly."""
    from repro.cpu.gadgets import GadgetScanner
    scanner = GadgetScanner(kernel.image.text)
    tb = kernel.addr_space.text_base
    buf = kernel.slab.kmalloc(512)
    paddr = kernel.addr_space.paddr_of_kva(buf)
    chain = [tb + scanner.find_pop("rdi").image_offset, 0,
             kernel.symbol_address("prepare_kernel_cred"),
             tb + scanner.find_mov_rdi_rax().image_offset,
             kernel.symbol_address("commit_creds"), STOP_RIP]
    for i, qword in enumerate(chain):
        kernel.phys.write_u64(paddr + 0x10 + 8 * i, qword)
    pivot = tb + scanner.find_stack_pivot().image_offset
    result = kernel.executor.invoke_callback(pivot, rdi=buf)
    assert result.escalated
    assert kernel.executor.creds.is_root
    assert result.functions_called == ["prepare_kernel_cred",
                                       "commit_creds"]


def test_commit_creds_requires_prepared_token(kernel):
    result = kernel.executor.invoke_callback(
        kernel.symbol_address("commit_creds"), rdi=0xBAD)
    assert result.completed and not result.escalated


def test_cet_ibt_blocks_gadget_entry():
    from repro.sim.kernel import Kernel
    k = Kernel(seed=7, phys_mb=128, cet_ibt=True)
    from repro.cpu.gadgets import GadgetScanner
    pivot_off = GadgetScanner(k.image.text).find_stack_pivot().image_offset
    with pytest.raises(ControlFlowViolation):
        k.executor.invoke_callback(k.addr_space.text_base + pivot_off,
                                   rdi=0)
    # legitimate function entries still work
    result = k.executor.invoke_callback(k.symbol_address("kfree_skb"))
    assert result.completed


def test_cet_shadow_stack_blocks_rop():
    from repro.sim.kernel import Kernel
    from repro.cpu.gadgets import GadgetScanner
    k = Kernel(seed=7, phys_mb=128, cet_shadow_stack=True)
    scanner = GadgetScanner(k.image.text)
    tb = k.addr_space.text_base
    buf = k.slab.kmalloc(512)
    paddr = k.addr_space.paddr_of_kva(buf)
    chain = [tb + scanner.find_pop("rdi").image_offset, 0,
             k.symbol_address("prepare_kernel_cred"), STOP_RIP]
    for i, qword in enumerate(chain):
        k.phys.write_u64(paddr + 0x10 + 8 * i, qword)
    pivot = tb + scanner.find_stack_pivot().image_offset
    with pytest.raises(ControlFlowViolation):
        k.executor.invoke_callback(pivot, rdi=buf)
    assert not k.executor.creds.is_root
    # legitimate callbacks survive the shadow stack
    result = k.executor.invoke_callback(k.symbol_address("kfree_skb"))
    assert result.completed


def test_runaway_execution_bounded(kernel):
    """A chain that loops forever hits the step limit, not a hang."""
    from repro.cpu.gadgets import GadgetScanner
    scanner = GadgetScanner(kernel.image.text)
    tb = kernel.addr_space.text_base
    buf = kernel.slab.kmalloc(256)
    paddr = kernel.addr_space.paddr_of_kva(buf)
    pop_rdi = tb + scanner.find_pop("rdi").image_offset
    # self-loop: pop rdi; ret -> (value, back to pop rdi) forever
    kernel.phys.write_u64(paddr + 0x10, pop_rdi)
    kernel.phys.write_u64(paddr + 0x18, 0)
    kernel.phys.write_u64(paddr + 0x20, pop_rdi)
    # make the chain re-read itself by pivoting rsp back
    pivot = tb + scanner.find_stack_pivot().image_offset
    with pytest.raises((ExecutionFault, NxViolation)):
        # the walk off the chain faults (NX on a zero return address)
        # or hits the interpreter's step limit -- never hangs
        kernel.executor.invoke_callback(pivot, rdi=buf)
