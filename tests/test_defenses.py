"""Defenses: bounce buffers, DAMN segregation, blinding, the matrix."""

import pytest

from repro.core.defenses.blinding import PointerBlinding, recover_cookie
from repro.core.defenses.policy import (DefenseConfig, build_victim,
                                        evaluate_matrix, matrix_rows)
from repro.sim.kernel import Kernel
from repro.sim.rng import DeterministicRng


def test_blinding_roundtrip():
    blinding = PointerBlinding(DeterministicRng(1))
    pointer = 0xFFFF_FFFF_8123_4567
    assert blinding.unblind(blinding.blind(pointer)) == pointer
    assert blinding.blind(pointer) != pointer


def test_cookie_recovery_by_xor():
    blinding = PointerBlinding(DeterministicRng(2))
    pointer = 0xFFFF_FFFF_8100_0000
    stored = blinding.blind(pointer)
    candidates = recover_cookie(stored, [pointer, 0xFFFF_FFFF_8200_0000])
    assert blinding.cookie_for_test() in candidates


def test_bounce_buffers_hide_colocated_data():
    """The device sees only the I/O bytes; neighbours never leak."""
    k = Kernel(seed=7, phys_mb=256, bounce_buffers=True)
    k.iommu.attach_device("dev0")
    buf = k.slab.kmalloc(128)
    neighbour = k.slab.kmalloc(128)
    k.cpu_write(buf, b"A" * 16)
    k.cpu_write(neighbour, b"NEIGHBOUR-SECRET")
    iova = k.dma.dma_map_single("dev0", buf, 128, "DMA_TO_DEVICE")
    page = k.iommu.device_read("dev0", iova & ~0xFFF, 4096)
    assert b"A" * 16 in page
    assert b"NEIGHBOUR-SECRET" not in page


def test_bounce_copies_device_writes_back_on_unmap():
    k = Kernel(seed=7, phys_mb=256, bounce_buffers=True)
    k.iommu.attach_device("dev0")
    buf = k.slab.kmalloc(128)
    iova = k.dma.dma_map_single("dev0", buf, 128, "DMA_FROM_DEVICE")
    k.iommu.device_write("dev0", iova, b"from-device")
    # not visible in the real buffer until the sync at unmap
    assert k.cpu_read(buf, 11) != b"from-device"
    k.dma.dma_unmap_single("dev0", iova, 128, "DMA_FROM_DEVICE")
    assert k.cpu_read(buf, 11) == b"from-device"


def test_bounce_post_unmap_writes_never_propagate():
    """Deferred-mode stale writes land in the (dead) bounce page."""
    k = Kernel(seed=7, phys_mb=256, bounce_buffers=True,
               iommu_mode="deferred")
    k.iommu.attach_device("dev0")
    buf = k.slab.kmalloc(128)
    iova = k.dma.dma_map_single("dev0", buf, 128, "DMA_FROM_DEVICE")
    k.iommu.device_write("dev0", iova, b"legit")
    k.dma.dma_unmap_single("dev0", iova, 128, "DMA_FROM_DEVICE")
    before = k.cpu_read(buf, 16)
    try:
        k.iommu.device_write("dev0", iova, b"stale-overwrite!")
    except Exception:
        pass
    assert k.cpu_read(buf, 16) == before


def test_bounce_accounting():
    k = Kernel(seed=7, phys_mb=256, bounce_buffers=True)
    k.iommu.attach_device("dev0")
    buf = k.slab.kmalloc(128)
    iova = k.dma.dma_map_single("dev0", buf, 128, "DMA_TO_DEVICE")
    assert k.dma.bounce_pages_used == 1
    assert k.dma.bytes_copied == 128
    k.dma.dma_unmap_single("dev0", iova, 128, "DMA_TO_DEVICE")
    assert k.dma.bounce_pages_used == 0


def test_damn_segregates_io_data_from_kernel_objects():
    """DAMN-style dedicated I/O slab: skb data never shares a page
    with sockets or other kmalloc objects."""
    k = Kernel(seed=7, phys_mb=256, damn=True)
    nic = k.add_nic("eth0")
    skb = k.stack.send(b"x", dst_ip=0x0B00_0001, nic=nic)
    data_pfn = k.addr_space.pfn_of_kva(skb.head_kva)
    sock_pfn = k.addr_space.pfn_of_kva(k.stack.sockets[0].kva)
    assert data_pfn != sock_pfn
    assert k.slab.live_objects_on_pfn(data_pfn) == []
    nic.device_fetch_tx()
    nic.tx_clean()


def test_defense_config_matrix_shape():
    """The E14 headline: who blocks what (subset for test runtime)."""
    configs = (DefenseConfig("baseline-deferred"),
               DefenseConfig("strict", iommu_mode="strict"),
               DefenseConfig("bounce", bounce_buffers=True,
                             iommu_mode="strict"))
    cells = evaluate_matrix(configs, seed=3)
    outcome = {(c.config, c.attack): c.escalated for c in cells}
    # no defense: everything lands
    assert outcome[("baseline-deferred", "ringflood")]
    assert outcome[("baseline-deferred", "poisoned-tx")]
    assert outcome[("baseline-deferred", "forward-thinking")]
    # strict alone does NOT save the system (type (c) remains)
    assert any(outcome[("strict", a)] for a in
               ("ringflood", "poisoned-tx", "forward-thinking"))
    # bounce buffers kill the leaks -> compound attacks die early
    assert not any(outcome[("bounce", a)] for a in
                   ("ringflood", "poisoned-tx", "forward-thinking"))
    rows = matrix_rows(cells)
    assert rows[0].startswith("defense")
    assert len(rows) == 4


def test_build_victim_applies_config():
    config = DefenseConfig("strict+cet", iommu_mode="strict",
                           cet_ibt=True, forwarding=False)
    kernel = build_victim(config, seed=3)
    assert kernel.iommu.mode == "strict"
    assert kernel.executor.cet_enabled
    assert not kernel.stack.forwarding
