"""D-KASAN: each event kind, shadow memory, report rendering."""

from repro.core.dkasan import DKasan, format_report, format_sample_lines
from repro.core.dkasan.shadow import ShadowMemory, ShadowState
from repro.mem.accounting import AllocSite
from repro.sim.kernel import Kernel


def make_instrumented(**kwargs):
    dkasan = DKasan(256 << 20)
    kernel = Kernel(seed=9, phys_mb=256, sink=dkasan,
                    boot_jitter_pages=0, boot_jitter_blocks=0, **kwargs)
    kernel.iommu.attach_device("dev0")
    return dkasan, kernel


def test_map_after_alloc_detected():
    """An unrelated object already on the page when a neighbour gets
    mapped (section 4.2 case 2)."""
    dkasan, kernel = make_instrumented()
    bystander = kernel.slab.kmalloc(512, site=AllocSite("load_elf_phdrs",
                                                        0xBF, 0x130))
    io_buf = kernel.slab.kmalloc(512)  # same slab page
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    events = dkasan.events_of("map-after-alloc")
    assert any(e.site.function == "load_elf_phdrs" and e.size == 512
               for e in events)


def test_mapped_buffer_itself_not_reported():
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512)
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    assert all(e.site.function != "kmalloc"
               for e in dkasan.events_of("map-after-alloc"))


def test_alloc_after_map_detected():
    """A fresh object lands on an already-mapped page (case 1)."""
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512)
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    kernel.slab.kmalloc(512, site=AllocSite("sock_alloc_inode",
                                            0x4F, 0x120))
    events = dkasan.events_of("alloc-after-map")
    assert any(e.site.function == "sock_alloc_inode" for e in events)
    assert events[0].perms == ("WRITE",)


def test_access_after_map_detected():
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512)
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    kernel.cpu_write(io_buf, b"touch", site=AllocSite("memcpy_toio"))
    events = dkasan.events_of("access-after-map")
    assert events and events[0].site.function == "memcpy_toio"


def test_access_unmapped_page_silent():
    dkasan, kernel = make_instrumented()
    buf = kernel.slab.kmalloc(512)
    kernel.cpu_write(buf, b"x")
    assert dkasan.events_of("access-after-map") == []


def test_multiple_map_merges_permissions():
    """Figure 3 line 1: the same buffer mapped READ and WRITE."""
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512, site=AllocSite("__alloc_skb",
                                                     0xE0, 0x3F0))
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_TO_DEVICE")
    events = dkasan.events_of("multiple-map")
    assert any(e.perms == ("READ", "WRITE")
               and e.site.function == "__alloc_skb" for e in events)
    assert "size 512 [READ, WRITE] __alloc_skb+0xe0/0x3f0" in \
        events[0].render() or any(
            "size 512 [READ, WRITE] __alloc_skb+0xe0/0x3f0"
            == e.render() for e in events)


def test_unmap_clears_windows():
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", io_buf, 512,
                                     "DMA_FROM_DEVICE")
    kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_FROM_DEVICE")
    kernel.slab.kmalloc(512, site=AllocSite("late_alloc"))
    assert all(e.site.function != "late_alloc"
               for e in dkasan.events_of("alloc-after-map"))


def test_access_events_throttled_per_site_and_page():
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512)
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    for _ in range(10):
        kernel.cpu_write(io_buf, b"y", site=AllocSite("poll_loop"))
    assert len(dkasan.events_of("access-after-map")) == 1


def test_shadow_memory_states():
    shadow = ShadowMemory(1 << 20)
    shadow.poison_range(0x100, 64, ShadowState.ALLOCATED)
    assert shadow.state_at(0x100) == ShadowState.ALLOCATED
    assert shadow.state_at(0x100 + 63) == ShadowState.ALLOCATED
    assert shadow.state_at(0x100 + 64) == ShadowState.UNTRACKED
    shadow.poison_range(0x100, 64, ShadowState.FREED)
    assert shadow.any_state_in(0x100, 64, ShadowState.FREED)
    assert shadow.tracked_granules == 8


def test_kernel_tracks_freed_state():
    dkasan, kernel = make_instrumented()
    buf = kernel.slab.kmalloc(256)
    paddr = kernel.addr_space.paddr_of_kva(buf)
    assert dkasan.shadow.state_at(paddr) == ShadowState.ALLOCATED
    kernel.slab.kfree(buf)
    assert dkasan.shadow.state_at(paddr) == ShadowState.FREED


def test_report_formatting():
    dkasan, kernel = make_instrumented()
    io_buf = kernel.slab.kmalloc(512, site=AllocSite("__alloc_skb",
                                                     0xE0, 0x3F0))
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    kernel.dma.dma_map_single("dev0", io_buf, 512, "DMA_TO_DEVICE")
    report = format_report(dkasan)
    assert "multiple-map" in report
    lines = format_sample_lines(dkasan.events, limit=3)
    assert lines[0].startswith("[1] size ")


def test_workload_produces_all_dynamic_kinds():
    """The section 4.2 experiment shape: compile + ping."""
    from repro.sim.workload import run_compile_and_ping
    dkasan = DKasan(256 << 20)
    kernel = Kernel(seed=9, phys_mb=256, sink=dkasan)
    nic = kernel.add_nic("eth0")
    stats = run_compile_and_ping(kernel, nic, rounds=25)
    assert stats.pings == 25
    counts = dkasan.summary_counts()
    for kind in ("alloc-after-map", "map-after-alloc",
                 "access-after-map", "multiple-map"):
        assert counts[kind] > 0, kind
    assert kernel.stack.stats.oopses == 0
