"""DmaApi: mapping semantics, page granularity, registry tracking."""

import pytest

from repro.errors import DmaApiError, IommuFault
from repro.mem.phys import PAGE_SIZE


def test_map_preserves_page_offset(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(512)
    iova = k.dma.dma_map_single("dev0", kva, 512, "DMA_TO_DEVICE")
    assert iova & 0xFFF == kva & 0xFFF


def test_whole_page_exposed_not_just_buffer(bare_kernel):
    """Section 9.1: "the whole page is accessible" despite the length
    argument."""
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(64)
    neighbour = k.slab.kmalloc(64)  # same slab page
    k.cpu_write(neighbour, b"SECRET42")
    iova = k.dma.dma_map_single("dev0", kva, 64, "DMA_TO_DEVICE")
    page_iova = iova & ~(PAGE_SIZE - 1)
    page = k.iommu.device_read("dev0", page_iova, PAGE_SIZE)
    assert b"SECRET42" in page


def test_multi_page_buffer_fully_mapped(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(8192)
    iova = k.dma.dma_map_single("dev0", kva, 8192, "DMA_FROM_DEVICE")
    k.iommu.device_write("dev0", iova + 8000, b"tail")
    paddr = k.addr_space.paddr_of_kva(kva)
    assert k.phys.read(paddr + 8000, 4) == b"tail"


def test_unmap_removes_translation_strict():
    from repro.sim.kernel import Kernel
    k = Kernel(seed=7, phys_mb=128, iommu_mode="strict")
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(256)
    iova = k.dma.dma_map_single("dev0", kva, 256, "DMA_FROM_DEVICE")
    k.iommu.device_write("dev0", iova, b"x")
    k.dma.dma_unmap_single("dev0", iova, 256, "DMA_FROM_DEVICE")
    with pytest.raises(IommuFault):
        k.iommu.device_write("dev0", iova, b"y")


def test_unmap_size_mismatch_rejected(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(256)
    iova = k.dma.dma_map_single("dev0", kva, 256, "DMA_TO_DEVICE")
    with pytest.raises(DmaApiError):
        k.dma.dma_unmap_single("dev0", iova, 128, "DMA_TO_DEVICE")
    with pytest.raises(DmaApiError):
        k.dma.dma_unmap_single("dev0", iova, 256, "DMA_FROM_DEVICE")


def test_unmap_unknown_iova_rejected(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    with pytest.raises(DmaApiError):
        k.dma.dma_unmap_single("dev0", 0xF000, 64, "DMA_TO_DEVICE")


def test_bad_direction_rejected(bare_kernel):
    k = bare_kernel
    kva = k.slab.kmalloc(64)
    with pytest.raises(DmaApiError):
        k.dma.dma_map_single("dev0", kva, 64, "DMA_SIDEWAYS")


def test_zero_size_rejected(bare_kernel):
    k = bare_kernel
    kva = k.slab.kmalloc(64)
    with pytest.raises(DmaApiError):
        k.dma.dma_map_single("dev0", kva, 0, "DMA_TO_DEVICE")


def test_registry_tracks_live_mappings(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(512)
    iova = k.dma.dma_map_single("dev0", kva, 512, "DMA_TO_DEVICE")
    mapping = k.dma.registry.lookup("dev0", iova)
    assert mapping is not None and mapping.active
    assert mapping.size == 512
    pfn = k.addr_space.paddr_of_kva(kva) >> 12
    assert mapping in k.dma.registry.mappings_on_pfn(pfn)
    k.dma.dma_unmap_single("dev0", iova, 512, "DMA_TO_DEVICE")
    assert not mapping.active
    assert k.dma.registry.mappings_on_pfn(pfn) == []
    assert mapping.unmapped_at_us is not None


def test_registry_detects_type_c(bare_kernel):
    """Two mappings covering the same frame show up together."""
    k = bare_kernel
    k.iommu.attach_device("dev0")
    a = k.page_frag.alloc(1024)
    b = k.page_frag.alloc(1024)  # same chunk page
    ia = k.dma.dma_map_single("dev0", a, 1024, "DMA_FROM_DEVICE")
    ib = k.dma.dma_map_single("dev0", b, 1024, "DMA_FROM_DEVICE")
    pfn = k.addr_space.paddr_of_kva(a) >> 12
    assert len(k.dma.registry.mappings_on_pfn(pfn)) == 2


def test_dma_map_page(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(4096)
    pfn = k.addr_space.pfn_of_kva(kva)
    iova = k.dma.dma_map_page("dev0", pfn, 0x100, 64, "DMA_TO_DEVICE")
    assert iova & 0xFFF == 0x100
    k.dma.dma_unmap_page("dev0", iova, 64, "DMA_TO_DEVICE")


def test_scatter_gather(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    buffers = [(k.slab.kmalloc(256), 256), (k.slab.kmalloc(512), 512)]
    entries = k.dma.dma_map_sg("dev0", buffers, "DMA_TO_DEVICE")
    assert len(entries) == 2
    for (kva, size), entry in zip(buffers, entries):
        assert entry.size == size
        assert entry.iova & 0xFFF == kva & 0xFFF
    k.dma.dma_unmap_sg("dev0", entries, "DMA_TO_DEVICE")
    assert k.dma.registry.nr_live == 0


def test_deferred_iova_not_reused_before_flush(bare_kernel):
    """The flush-queue semantics: a freed IOVA range is recycled only
    after the invalidation lands (prevents permission confusion)."""
    k = bare_kernel
    k.iommu.attach_device("dev0")
    kva = k.slab.kmalloc(256)
    iova = k.dma.dma_map_single("dev0", kva, 256, "DMA_TO_DEVICE")
    k.dma.dma_unmap_single("dev0", iova, 256, "DMA_TO_DEVICE")
    kva2 = k.slab.kmalloc(256)
    iova2 = k.dma.dma_map_single("dev0", kva2, 256, "DMA_FROM_DEVICE")
    assert iova2 & ~0xFFF != iova & ~0xFFF
    k.advance_time_ms(11.0)  # flush fires, range recycled
    kva3 = k.slab.kmalloc(256)
    iova3 = k.dma.dma_map_single("dev0", kva3, 256, "DMA_FROM_DEVICE")
    assert iova3 & ~0xFFF == iova & ~0xFFF
