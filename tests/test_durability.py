"""The crash-consistent persistence layer and its crashtest harness.

Three tiers, matching the module:

* unit: durability modes, atomic writes, checksummed append/replay,
  torn-tail healing, stale-tmp and stale-claim GC;
* property: truncate-at-every-byte-offset recovery for the coverage
  map, the corpus snapshot, and journaled JSONL streams -- a torn
  artifact must either load a valid prefix or fail loudly, never
  return silently wrong data;
* process: ``REPRO_CRASH`` really kills (exit 137), the census
  enumerates crash points, and a bounded slice of the crashtest
  matrix recovers a real campaign byte-identically.
"""

import json
import os
import subprocess
import sys
import time
import warnings
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import durability, faults
from repro.campaign import snapshot as snapshot_store
from repro.coverage import CoverageMap
from repro.errors import CampaignError
from repro.faults import FaultSpec, SiteRule

SCALE = 0.05


@pytest.fixture(autouse=True)
def _clean_state():
    durability._reset_crash_state_for_tests()
    yield
    faults.uninstall()
    durability._reset_crash_state_for_tests()


def _env(**extra):
    env = dict(os.environ)
    env.pop("REPRO_CRASH", None)
    env.pop("REPRO_CRASH_CENSUS", None)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")])
    env.update(extra)
    return env


# -- modes and atomic writes -------------------------------------------------


def test_mode_defaults_and_validates(monkeypatch):
    monkeypatch.delenv("REPRO_DURABILITY", raising=False)
    assert durability.mode() == "atomic"
    monkeypatch.setenv("REPRO_DURABILITY", "fsync")
    assert durability.mode() == "fsync"
    monkeypatch.setenv("REPRO_DURABILITY", "journaled-ha")
    with pytest.warns(RuntimeWarning, match="REPRO_DURABILITY"):
        assert durability.mode() == "atomic"


def test_atomic_write_json_bytes_match_plain_dump(tmp_path):
    doc = {"b": [1, 2], "a": {"nested": None}}
    path = str(tmp_path / "doc.json")
    durability.atomic_write_json(path, doc, indent=2, sort_keys=True,
                                 trailing_newline=True)
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == json.dumps(doc, indent=2,
                                           sort_keys=True) + "\n"
    assert not [name for name in os.listdir(tmp_path)
                if name.startswith(durability.TMP_PREFIX)]


def test_atomic_mode_replaces_off_mode_rewrites_inplace(tmp_path,
                                                        monkeypatch):
    path = str(tmp_path / "doc.json")
    durability.atomic_write_text(path, "one")
    first_inode = os.stat(path).st_ino
    durability.atomic_write_text(path, "two")
    assert os.stat(path).st_ino != first_inode  # fresh tmp replaced it
    monkeypatch.setenv("REPRO_DURABILITY", "off")
    inplace_inode = os.stat(path).st_ino
    durability.atomic_write_text(path, "three")
    assert os.stat(path).st_ino == inplace_inode
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "three"


def test_fsync_mode_syncs_file_and_parent_dir(tmp_path, monkeypatch):
    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync",
                        lambda fd: (synced.append(fd),
                                    real_fsync(fd))[1])
    monkeypatch.setenv("REPRO_DURABILITY", "fsync")
    durability.atomic_write_text(str(tmp_path / "doc.json"), "x")
    assert len(synced) == 2  # tmp file, then the parent directory
    synced.clear()
    durability.append_jsonl(str(tmp_path / "log.jsonl"), {"n": 1})
    assert len(synced) == 1
    monkeypatch.setenv("REPRO_DURABILITY", "atomic")
    synced.clear()
    durability.atomic_write_text(str(tmp_path / "doc.json"), "y")
    assert synced == []


def test_genuine_write_error_cleans_up_tmp(tmp_path, monkeypatch):
    real_replace = os.replace

    def explode(src, dst):
        raise OSError("disk gone")

    monkeypatch.setattr(os, "replace", explode)
    with pytest.raises(OSError, match="disk gone"):
        durability.atomic_write_text(str(tmp_path / "doc.json"), "x")
    monkeypatch.setattr(os, "replace", real_replace)
    assert os.listdir(tmp_path) == []


# -- checksummed records and journaled streams -------------------------------


json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=8)


@settings(max_examples=50, deadline=None)
@given(record=st.dictionaries(
    st.text(min_size=1, max_size=8).filter(lambda k: k != "_crc"),
    json_values, max_size=5))
def test_seal_validate_roundtrip(record):
    sealed = durability.seal_record(record)
    assert durability.CRC_KEY in sealed
    assert durability.validate_record(sealed) == record
    # re-encoding through JSON (what the file does) must still verify
    rewound = json.loads(json.dumps(sealed))
    assert durability.validate_record(rewound) == json.loads(
        json.dumps(record))


def test_validate_rejects_bitflips_accepts_legacy():
    sealed = durability.seal_record({"seed": 3, "status": "ok"})
    corrupt = dict(sealed)
    corrupt["status"] = "failed"          # flipped after sealing
    assert durability.validate_record(corrupt) is None
    assert durability.validate_record({"seed": 3}) == {"seed": 3}
    assert durability.validate_record("not-a-dict") is None


def test_append_replay_roundtrip_and_newline_guard(tmp_path):
    path = str(tmp_path / "log.jsonl")
    appender = durability.JournaledAppender(path)
    appender.append({"n": 1})
    appender.append({"n": 2})
    # a dead writer tore the tail mid-line
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"n": 3, "status"')
    # the guard starts a fresh line, so record 4 survives the residue
    appender.append({"n": 4})
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        replayed = appender.replay()
    assert [record["n"] for record in replayed] == [1, 2, 4]


def test_replay_heals_torn_tail_with_one_warning(tmp_path):
    path = str(tmp_path / "log.jsonl")
    durability.append_jsonl(path, {"n": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"n": 2, "trunc')
    bad = []
    with pytest.warns(UserWarning, match="torn trailing line"):
        rows = durability.replay_jsonl(
            path, warn=True,
            on_bad_line=lambda lineno, line: bad.append(lineno))
    assert [record["n"] for _lineno, record in rows] == [1]
    assert bad == [2]


def test_replay_skips_checksum_corrupt_line(tmp_path):
    path = str(tmp_path / "log.jsonl")
    durability.append_jsonl(path, {"n": 1})
    durability.append_jsonl(path, {"n": 2})
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    body = json.loads(lines[0])
    body["n"] = 99                        # bit-flip; stale _crc stays
    lines[0] = json.dumps(body, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    rows = durability.replay_jsonl(path)
    assert [record["n"] for _lineno, record in rows] == [2]


# -- residue GC --------------------------------------------------------------


def test_collect_stale_tmp_only_eats_aged_durability_files(tmp_path):
    old = tmp_path / f"{durability.TMP_PREFIX}dead{durability.TMP_SUFFIX}"
    young = tmp_path / f"{durability.TMP_PREFIX}live{durability.TMP_SUFFIX}"
    foreign = tmp_path / "results.tmp"
    for path in (old, young, foreign):
        path.write_text("x")
    ancient = time.time() - 3600
    os.utime(old, (ancient, ancient))
    os.utime(foreign, (ancient, ancient))
    removed = durability.collect_stale_tmp(str(tmp_path))
    assert removed == [str(old)]
    assert young.exists() and foreign.exists()
    # max_age_s=0 force-collects in-flight residue too (crashtest mode)
    assert durability.collect_stale_tmp(str(tmp_path),
                                        max_age_s=0.0) == [str(young)]


def test_stale_claim_gc_on_merge(tmp_path):
    from repro.campaign import CampaignConfig
    from repro.campaign.shard import (Shard, collect_stale_claims,
                                      try_claim)
    config = CampaignConfig(nr_seeds=4, seed_base=1,
                            output=str(tmp_path / "results.jsonl"))
    shard_dir = str(tmp_path / "queue")
    os.makedirs(shard_dir)
    for index in (0, 1):
        claim = try_claim(shard_dir, Shard(index, 1 + 2 * index, 2))
        assert claim is not None
    # shard 1 finished; shard 0's owner died silently
    (tmp_path / "queue" / "done-1.json").write_text("{}")
    stale = tmp_path / "queue" / "claim-0.json"
    body = json.loads(stale.read_text())
    body["claimed_at"] = time.time() - 1000.0
    stale.write_text(json.dumps(body))
    messages = []
    collected = collect_stale_claims(shard_dir, config, shard_size=2,
                                     stale_after_s=60.0,
                                     on_collect=messages.append)
    assert collected == [0]
    assert not stale.exists()
    assert (tmp_path / "queue" / "claim-1.json").exists()
    assert len(messages) == 1 and "claim-0.json" in messages[0]


def test_torn_claim_counts_as_stale(tmp_path):
    from repro.campaign import CampaignConfig
    from repro.campaign.shard import collect_stale_claims
    config = CampaignConfig(nr_seeds=2, seed_base=1,
                            output=str(tmp_path / "results.jsonl"))
    shard_dir = str(tmp_path / "queue")
    os.makedirs(shard_dir)
    (tmp_path / "queue" / "claim-0.json").write_text('{"owner": "h')
    messages = []
    assert collect_stale_claims(shard_dir, config, shard_size=2,
                                stale_after_s=60.0,
                                on_collect=messages.append) == [0]
    assert "unknown" in messages[0]


def test_heartbeat_monitor_warns_once_per_torn_file(tmp_path):
    from repro.metrics.heartbeat import HeartbeatMonitor
    (tmp_path / "worker-99.json").write_text('{"pid": 99, "se')
    monitor = HeartbeatMonitor(str(tmp_path))
    with pytest.warns(RuntimeWarning, match="torn/partial"):
        assert monitor.scan() == []
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert monitor.scan() == []       # second scan stays quiet


# -- truncate-at-every-byte-offset recovery ----------------------------------


def test_coverage_map_survives_truncation_at_every_offset(tmp_path):
    cover = CoverageMap()
    cover.observe(1, {"digest": "d1", "features": {"dma:map": 2}})
    cover.observe(2, {"digest": "d2", "features": {"iommu:fault": 1}},
                  lane="strict")
    path = str(tmp_path / "map.json")
    cover.save(path)
    size = os.path.getsize(path)
    torn = str(tmp_path / "torn.json")
    for offset in range(size + 1):
        with open(path, "rb") as handle:
            data = handle.read()
        with open(torn, "wb") as handle:
            handle.write(data)
        durability.truncate_file(torn, offset)
        if offset >= size - 1:
            # full file, or only the trailing newline lost
            assert CoverageMap.load(torn).digest == cover.digest
            continue
        # anything shorter must fail loudly, never half-load
        with pytest.raises(CampaignError):
            CoverageMap.load(torn)


def _tiny_snapshot(tmp_path):
    directory = str(tmp_path / "snap")
    os.makedirs(directory)
    files = {"a.c": "int a;\n", "dir/b.c": "int bb;\n"}
    chunks, offsets, position = [], [], 0
    for path in sorted(files):
        data = files[path].encode("utf-8")
        chunks.append(data)
        offsets.append([path, position, len(data)])
        position += len(data)
    with open(os.path.join(directory, snapshot_store.BLOB_NAME),
              "wb") as handle:
        handle.write(b"".join(chunks))
    index = {"schema": snapshot_store.SNAPSHOT_SCHEMA, "key": "k",
             "files": offsets,
             "sites": [["a.c", 1, "map_single", ["read"]]]}
    with open(os.path.join(directory, snapshot_store.INDEX_NAME), "w",
              encoding="utf-8") as handle:
        json.dump(index, handle, separators=(",", ":"))
    return directory, files


def test_snapshot_index_truncation_fails_loudly_at_every_offset(
        tmp_path):
    directory, files = _tiny_snapshot(tmp_path)
    index_path = os.path.join(directory, snapshot_store.INDEX_NAME)
    with open(index_path, "rb") as handle:
        pristine = handle.read()
    for offset in range(len(pristine)):
        with open(index_path, "wb") as handle:
            handle.write(pristine)
        durability.truncate_file(index_path, offset)
        with pytest.raises(CampaignError):
            snapshot_store.load(directory)
    with open(index_path, "wb") as handle:
        handle.write(pristine)
    tree, _manifest = snapshot_store.load(directory)
    assert tree.files == files


def test_snapshot_blob_truncation_fails_loudly_at_every_offset(
        tmp_path):
    directory, files = _tiny_snapshot(tmp_path)
    blob_path = os.path.join(directory, snapshot_store.BLOB_NAME)
    with open(blob_path, "rb") as handle:
        pristine = handle.read()
    for offset in range(len(pristine)):
        with open(blob_path, "wb") as handle:
            handle.write(pristine)
        durability.truncate_file(blob_path, offset)
        with pytest.raises(CampaignError, match="blob"):
            snapshot_store.load(directory)
    with open(blob_path, "wb") as handle:
        handle.write(pristine)
    assert snapshot_store.load(directory)[0].files == files


def test_journal_truncation_yields_clean_prefix_at_every_offset(
        tmp_path):
    path = str(tmp_path / "log.jsonl")
    records = [{"n": index, "payload": "x" * index}
               for index in range(3)]
    for record in records:
        durability.append_jsonl(path, record)
    with open(path, "rb") as handle:
        pristine = handle.read()
    newlines = [index for index, byte in enumerate(pristine)
                if byte == ord("\n")]
    for offset in range(len(pristine) + 1):
        with open(path, "wb") as handle:
            handle.write(pristine)
        durability.truncate_file(path, offset)
        replayed = durability.replay_jsonl(path)
        # exactly the records whose content survived the cut (losing
        # only the newline is recoverable) -- never a half-record
        expected = sum(1 for position in newlines
                       if position <= offset)
        assert [record["n"] for _lineno, record in replayed] \
            == [record["n"] for record in records[:expected]]
        # and the stream stays appendable after healing
        durability.append_jsonl(path, {"n": 99})
        tail = durability.replay_jsonl(path)[-1][1]
        assert tail["n"] == 99


# -- crash points ------------------------------------------------------------


def test_parse_crash_env_validates():
    site, nth = durability.parse_crash_env("durability.mid_append@3")
    assert (site, nth) == ("durability.mid_append", 3)
    for bad in ("durability.mid_append", "mem.slab.kmalloc@1",
                "durability.mid_append@0", "durability.nope@1"):
        with pytest.raises(ValueError):
            durability.parse_crash_env(bad)


def test_fault_plan_raise_leaves_tmp_residue(tmp_path):
    spec = FaultSpec([SiteRule("durability.pre_replace",
                               at_steps=(0,))], seed=0)
    path = str(tmp_path / "doc.json")
    with faults.session(spec.compile()):
        with pytest.raises(faults.InjectedDurabilityCrash):
            durability.atomic_write_text(path, "never lands")
    assert not os.path.exists(path)
    residue = [name for name in os.listdir(tmp_path)
               if name.startswith(durability.TMP_PREFIX)]
    assert len(residue) == 1              # the simulated power loss
    assert durability.collect_stale_tmp(str(tmp_path),
                                        max_age_s=0.0)


def test_rule_action_validates():
    from repro.errors import FaultError
    rule = SiteRule("durability.post_write", at_steps=(0,),
                    action="kill")
    assert SiteRule.from_json(rule.to_json()).action == "kill"
    with pytest.raises(FaultError):
        SiteRule("durability.post_write", at_steps=(0,),
                 action="explode")


_CRASH_SCRIPT = """
import sys
from repro import durability
durability.atomic_write_json(sys.argv[1] + "/first.json", {"n": 1})
durability.atomic_write_json(sys.argv[1] + "/second.json", {"n": 2})
durability.append_jsonl(sys.argv[1] + "/log.jsonl", {"n": 3})
print("SURVIVED")
"""


def test_repro_crash_census_counts_every_poke(tmp_path):
    census_path = str(tmp_path / "census.json")
    done = subprocess.run(
        [sys.executable, "-c", _CRASH_SCRIPT, str(tmp_path)],
        env=_env(REPRO_CRASH_CENSUS=census_path),
        stdout=subprocess.PIPE, text=True, timeout=60)
    assert done.returncode == 0 and "SURVIVED" in done.stdout
    with open(census_path, encoding="utf-8") as handle:
        census = json.load(handle)
    assert census == {"durability.mid_append": 1,
                      "durability.post_append": 1,
                      "durability.post_replace": 2,
                      "durability.post_write": 2,
                      "durability.pre_replace": 2}


def test_repro_crash_kills_at_the_nth_poke(tmp_path):
    done = subprocess.run(
        [sys.executable, "-c", _CRASH_SCRIPT, str(tmp_path)],
        env=_env(REPRO_CRASH="durability.pre_replace@2"),
        stdout=subprocess.PIPE, text=True, timeout=60)
    assert done.returncode == durability.CRASH_EXIT_STATUS
    assert "SURVIVED" not in done.stdout
    assert (tmp_path / "first.json").exists()    # poke 1 completed
    assert not (tmp_path / "second.json").exists()
    residue = [name for name in os.listdir(tmp_path)
               if name.startswith(durability.TMP_PREFIX)]
    assert len(residue) == 1              # second.json's orphaned tmp


def test_mid_append_kill_leaves_genuinely_torn_line(tmp_path):
    done = subprocess.run(
        [sys.executable, "-c", _CRASH_SCRIPT, str(tmp_path)],
        env=_env(REPRO_CRASH="durability.mid_append@1"),
        stdout=subprocess.PIPE, text=True, timeout=60)
    assert done.returncode == durability.CRASH_EXIT_STATUS
    path = str(tmp_path / "log.jsonl")
    with open(path, encoding="utf-8") as handle:
        torn = handle.read()
    assert torn and not torn.endswith("\n")
    with pytest.raises(ValueError):
        json.loads(torn)
    assert durability.replay_jsonl(path) == []   # healed to empty


# -- the crashtest harness ---------------------------------------------------


def test_pick_steps_first_last_and_spread():
    from repro.durability.crashtest import _pick_steps
    assert _pick_steps(2, 4) == [1, 2]
    assert _pick_steps(9, 1) == [1]
    assert _pick_steps(9, 2) == [1, 9]
    assert _pick_steps(9, 3) == [1, 5, 9]
    assert _pick_steps(0, 2) == []


def test_torn_offsets_spread_and_bounds():
    from repro.durability.crashtest import _torn_offsets
    for size in (2, 17, 4096):
        offsets = _torn_offsets(size, 4)
        assert offsets == sorted(set(offsets))
        assert all(0 < offset < size for offset in offsets)
    assert _torn_offsets(1, 4) == []
    assert _torn_offsets(100, 0) == []


def test_crashtest_matrix_recovers_a_real_campaign(tmp_path):
    """One kill point per append site plus one torn offset per
    artifact -- the bounded lane CI runs; the full matrix is the
    ``repro-dma crashtest`` default."""
    from repro.durability.crashtest import (CrashtestConfig,
                                            format_crashtest_report,
                                            run_crashtest)
    report = run_crashtest(
        CrashtestConfig(seeds=1, scale=SCALE, mutations=2,
                        max_per_site=1, torn_offsets=1,
                        sites=("durability.mid_append",
                               "durability.pre_replace")),
        str(tmp_path))
    rendered = format_crashtest_report(report)
    assert report.ok, rendered
    assert len(report.points) == 2
    assert {point.site for point in report.points} == {
        "durability.mid_append", "durability.pre_replace"}
    assert all(point.killed and point.resumed_ok
               for point in report.points)
    assert report.torn and all(torn.ok for torn in report.torn)
    assert "crashtest verdict: PASS" in rendered


def test_chaos_report_gates_on_crashtest():
    from repro.durability.crashtest import CrashtestReport, PointOutcome
    from repro.faults.chaos import ChaosReport, format_chaos_report
    healthy = CrashtestReport(
        points=[PointOutcome("durability.post_write", 1, killed=True,
                             resumed_ok=True, findings_match=True,
                             coverage_match=True, seeds_intact=True,
                             clean_tmp=True)])
    report = ChaosReport(crashtest=healthy)
    assert report.ok
    assert "crash-and-resume: ok" in format_chaos_report(report)
    report.crashtest = CrashtestReport(error="census unreadable")
    assert not report.ok
    assert "crashtest error" in format_chaos_report(report)


def test_crashtest_cli_rejects_unknown_site(capsys):
    from repro.cli import main
    assert main(["crashtest", "--sites", "durability.bogus"]) == 2
    assert "unknown crash site" in capsys.readouterr().err
