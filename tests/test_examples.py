"""The shipped examples run end to end (they are integration tests)."""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", []),
    ("examples/runtime_sanitizer.py", []),
    ("examples/invalidation_tradeoff.py", []),
    ("examples/audit_drivers.py", []),
    ("examples/full_attack_chain.py", ["--quick"]),
    ("examples/campaign_smoke.py", []),
    ("examples/trace_timeline.py", []),
]


@pytest.mark.parametrize("path,argv",
                         EXAMPLES, ids=[p for p, _ in EXAMPLES])
def test_example_runs(path, argv, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path] + argv)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} produced no output"


def test_quickstart_demonstrates_escalation(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "root=True" in out
    assert "kernel secret" in out


def test_audit_example_reports_table2(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/audit_drivers.py"])
    runpy.run_path("examples/audit_drivers.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "742 dma-map calls (72.8%)" in out
    assert "SPOOFABLE 931" in out
