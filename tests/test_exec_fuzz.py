"""Property/fuzz tests on the executor's safety invariants.

The interpreter is the piece that decides whether an attack "worked",
so it must be robust: random garbage chains must never escalate
privileges, hang, or corrupt interpreter state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.exec import KERNEL_CRED_TOKEN, STOP_RIP, Executor
from repro.cpu.text import KernelImage
from repro.errors import (ControlFlowViolation, ExecutionFault,
                          NxViolation)
from repro.kaslr.randomize import randomize
from repro.kaslr.translate import AddressSpace
from repro.mem.phys import PhysicalMemory
from repro.sim.rng import DeterministicRng

PHYS = 64 << 20


def make_executor(**flags):
    phys = PhysicalMemory(PHYS // 4096)
    space = AddressSpace(randomize(DeterministicRng(1),
                                   phys_bytes=PHYS), PHYS)
    image = KernelImage(DeterministicRng(42))
    return phys, space, Executor(phys, space, image, **flags)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 2**64 - 1), min_size=2, max_size=16),
       st.integers(0, 2**20))
def test_random_chains_never_escalate(chain, offset_seed):
    """No sequence of random stack qwords reaches uid 0: escalation
    requires commit_creds(prepare_kernel_cred(0)) semantics, which
    random 64-bit values essentially never hit."""
    phys, space, executor = make_executor()
    buf_paddr = 0x200000 + (offset_seed & ~0xFFF)
    for i, qword in enumerate(chain):
        phys.write_u64(buf_paddr + 0x10 + 8 * i, qword)
    # pivot through a real gadget so the fuzz exercises the interpreter
    from repro.cpu.gadgets import GadgetScanner
    pivot = GadgetScanner(executor._image.text).find_stack_pivot()
    target = space.text_base + pivot.image_offset
    try:
        result = executor.invoke_callback(
            target, rdi=space.kva_of_paddr(buf_paddr))
        assert not result.escalated
    except (NxViolation, ExecutionFault, ControlFlowViolation):
        pass  # faulting is the expected outcome for garbage
    assert not executor.creds.is_root


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**64 - 1))
def test_random_callback_targets_fault_or_complete(target):
    """Arbitrary callback values either fault (NX) or run to
    completion -- the interpreter never hangs or leaks state."""
    _phys, _space, executor = make_executor()
    try:
        result = executor.invoke_callback(target)
        assert result.completed
    except (NxViolation, ExecutionFault, ControlFlowViolation):
        pass
    assert not executor.creds.is_root


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**64 - 1))
def test_commit_creds_needs_exact_token(rdi):
    """Only the prepare_kernel_cred token escalates."""
    _phys, space, executor = make_executor()
    image = executor._image
    addr = space.text_base + image.symbol("commit_creds").image_offset
    executor.invoke_callback(addr, rdi=rdi)
    assert executor.creds.is_root == (rdi == KERNEL_CRED_TOKEN)


def test_cet_fuzz_never_escalates():
    """Under CET even the *correct* attack chain cannot escalate."""
    phys, space, executor = make_executor(cet_ibt=True,
                                          cet_shadow_stack=True)
    from repro.cpu.gadgets import GadgetScanner
    scanner = GadgetScanner(executor._image.text)
    image = executor._image
    tb = space.text_base
    buf_paddr = 0x300000
    chain = [tb + scanner.find_pop("rdi").image_offset, 0,
             tb + image.symbol("prepare_kernel_cred").image_offset,
             tb + scanner.find_mov_rdi_rax().image_offset,
             tb + image.symbol("commit_creds").image_offset, STOP_RIP]
    for i, qword in enumerate(chain):
        phys.write_u64(buf_paddr + 0x10 + 8 * i, qword)
    pivot = tb + scanner.find_stack_pivot().image_offset
    try:
        executor.invoke_callback(pivot,
                                 rdi=space.kva_of_paddr(buf_paddr))
    except (ControlFlowViolation, NxViolation, ExecutionFault):
        pass
    assert not executor.creds.is_root
