"""Extensions: stale-reuse attack, device-side D-KASAN events,
__randomize_layout, the section-7 OS scenarios, and the CLI."""

import pytest

from repro.core.attacks.other_os import (run_freebsd_scenario,
                                         run_macos_scenario,
                                         run_windows_scenario)
from repro.core.attacks.ringflood import make_attacker
from repro.core.attacks.stale_reuse import run_stale_reuse
from repro.core.dkasan import DKasan
from repro.net.structs import (SKB_SHARED_INFO,
                               randomized_shared_info_layout)
from repro.sim.kernel import Kernel
from repro.sim.rng import DeterministicRng


# -- stale reuse (section 5.2.1) ------------------------------------------------

def test_stale_reuse_corrupts_under_deferred():
    kernel = Kernel(seed=71, phys_mb=256, iommu_mode="deferred")
    device = make_attacker(kernel, "dma0")
    report = run_stale_reuse(kernel, device)
    assert report.page_reused
    assert report.victim_corrupted
    assert not report.write_faulted


def test_stale_reuse_blocked_under_strict():
    kernel = Kernel(seed=71, phys_mb=256, iommu_mode="strict")
    device = make_attacker(kernel, "dma0")
    report = run_stale_reuse(kernel, device)
    assert report.write_faulted
    assert not report.victim_corrupted


# -- device-side D-KASAN events ----------------------------------------------------

def make_instrumented(**kwargs):
    dkasan = DKasan(256 << 20)
    kernel = Kernel(seed=9, phys_mb=256, sink=dkasan, **kwargs)
    kernel.iommu.attach_device("dev0")
    return dkasan, kernel


def test_device_access_after_unmap_event():
    dkasan, kernel = make_instrumented(iommu_mode="deferred")
    buf = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", buf, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"warm")
    assert dkasan.events_of("device-access-after-unmap") == []
    kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"stale")
    events = dkasan.events_of("device-access-after-unmap")
    assert events and events[0].device == "dev0"
    assert events[0].perms == ("WRITE",)


def test_device_access_after_free_event():
    dkasan, kernel = make_instrumented(iommu_mode="deferred")
    buf = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", buf, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"warm")
    kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_FROM_DEVICE")
    kernel.slab.kfree(buf)
    kernel.iommu.device_write("dev0", iova, b"uaf!")
    assert dkasan.events_of("device-access-after-free")


def test_legit_device_access_silent():
    dkasan, kernel = make_instrumented()
    buf = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("dev0", buf, 512,
                                     "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"fine")
    assert dkasan.events_of("device-access-after-unmap") == []
    assert dkasan.events_of("device-access-after-free") == []


# -- __randomize_layout (footnote 2) -------------------------------------------------

def test_randomized_layout_preserves_fields_and_size():
    layout = randomized_shared_info_layout(DeterministicRng(3))
    assert layout.size == SKB_SHARED_INFO.size
    names = {f.name for f in layout.fields()}
    assert names == {f.name for f in SKB_SHARED_INFO.fields()}
    # destructor_arg never lands at the stock offset...
    assert layout.field("destructor_arg").offset != 40
    # ...and the frags block is either before or after the header
    assert layout.field("frags[0].page").offset in (0, 48)


def test_randomized_layout_varies_across_boots():
    offsets = {randomized_shared_info_layout(DeterministicRng(seed))
               .field("destructor_arg").offset for seed in range(24)}
    assert len(offsets) >= 4


def test_randomized_kernel_still_networks():
    kernel = Kernel(seed=23, phys_mb=256, randomize_struct_layout=True)
    nic = kernel.add_nic("eth0")
    from repro.net.proto import PROTO_UDP, make_packet
    nic.device_receive(make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                                   dst_port=7, payload=b"Z" * 700))
    kernel.poll_and_process()
    nic.device_fetch_tx()
    nic.tx_clean()
    assert kernel.stack.stats.echoed == 1
    assert kernel.stack.stats.oopses == 0


def test_randomized_layout_blocks_fixed_offset_hijack():
    from repro.core.attacks.poisoned_tx import run_poisoned_tx
    victim = Kernel(seed=23, boot_index=5, phys_mb=512,
                    randomize_struct_layout=True)
    nic = victim.add_nic("eth0")
    device = make_attacker(victim, "eth0")
    report = run_poisoned_tx(victim, nic, device)
    assert not report.escalated


# -- section 7 OS scenarios ------------------------------------------------------------

def test_windows_net_buffer_single_step():
    kernel = Kernel(seed=81, phys_mb=256)
    report = run_windows_scenario(kernel, make_attacker(kernel, "nic0"))
    assert report.single_step_escalated


def test_freebsd_mbuf_single_step():
    kernel = Kernel(seed=81, phys_mb=256)
    report = run_freebsd_scenario(kernel, make_attacker(kernel, "nic0"))
    assert report.single_step_escalated


def test_macos_blinding_stops_single_step_not_compound():
    kernel = Kernel(seed=81, phys_mb=256)
    report = run_macos_scenario(kernel, make_attacker(kernel, "nic0"))
    assert not report.single_step_escalated
    assert "blinded" in report.single_step_blocked_reason
    assert report.compound_escalated


def test_macos_without_kaslr_break_stays_safe():
    kernel = Kernel(seed=81, phys_mb=256)
    report = run_macos_scenario(kernel, make_attacker(kernel, "nic0"),
                                kaslr_already_broken=False)
    assert not report.single_step_escalated
    assert report.compound_escalated is None


# -- CLI --------------------------------------------------------------------------------

def test_cli_attack_poisoned_tx(capsys):
    from repro.cli import main
    code = main(["attack", "poisoned-tx", "--seed", "23",
                 "--boot-index", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "escalated: True" in out


def test_cli_attack_blocked_returns_nonzero(capsys):
    from repro.cli import main
    code = main(["attack", "poisoned-tx", "--bounce-buffers"])
    assert code == 1


def test_cli_oscompare(capsys):
    from repro.cli import main
    assert main(["oscompare"]) == 0
    out = capsys.readouterr().out
    assert "FreeBSD" in out and "macOS" in out and "Windows" in out


def test_cli_sanitize(capsys):
    from repro.cli import main
    assert main(["sanitize", "--rounds", "6"]) == 0
    out = capsys.readouterr().out
    assert "D-KASAN report" in out


def test_cli_requires_subcommand():
    from repro.cli import main
    with pytest.raises(SystemExit):
        main([])
