"""repro.faults: spec validation, trigger semantics, engine plumbing."""

import json

import pytest

from repro import faults, metrics, trace
from repro.errors import (CampaignError, DmaApiError, FaultError,
                          OutOfMemoryError)
from repro.faults import FaultSpec, SiteRule, standard_spec


@pytest.fixture(autouse=True)
def _clean_engine():
    yield
    faults.uninstall()


# -- SiteRule validation -----------------------------------------------------

def test_rule_rejects_unknown_site():
    with pytest.raises(FaultError, match="unknown fault site"):
        SiteRule("mem.nope", every_nth=1)


def test_rule_requires_exactly_one_trigger():
    with pytest.raises(FaultError, match="exactly one trigger"):
        SiteRule("dma.map")
    with pytest.raises(FaultError, match="exactly one trigger"):
        SiteRule("dma.map", every_nth=2, probability=0.5)


@pytest.mark.parametrize("kwargs", [
    dict(probability=0.0), dict(probability=1.5),
    dict(every_nth=0), dict(every_nth=-3),
    dict(at_steps=(-1,)),
    dict(every_nth=1, max_fires=0),
])
def test_rule_rejects_bad_values(kwargs):
    with pytest.raises(FaultError):
        SiteRule("dma.map", **kwargs)


def test_rule_json_round_trip():
    rule = SiteRule("net.nic.truncate", at_steps=(0, 4), max_fires=2,
                    on_attempt=1, arg=0.25)
    assert SiteRule.from_json(rule.to_json()) == rule


def test_rule_from_json_rejects_unknown_fields():
    with pytest.raises(FaultError, match="unknown rule field"):
        SiteRule.from_json({"site": "dma.map", "every_nth": 1,
                            "frequency": 2})


def test_spec_rejects_duplicate_sites():
    with pytest.raises(FaultError, match="duplicate rule"):
        FaultSpec([SiteRule("dma.map", every_nth=1),
                   SiteRule("dma.map", every_nth=2)])


def test_spec_json_round_trip():
    spec = standard_spec(seed=7)
    clone = FaultSpec.from_json(json.loads(json.dumps(spec.to_json())))
    assert clone.seed == 7
    assert clone.rules == spec.rules


def test_spec_split_partitions_by_layer():
    kernel, tooling = standard_spec().split()
    assert kernel.sites <= frozenset(faults.KERNEL_SITES)
    assert tooling.sites <= frozenset(faults.TOOLING_SITES)
    assert kernel.sites | tooling.sites == standard_spec().sites


# -- trigger semantics -------------------------------------------------------

def _pokes(plan, site, n):
    return [plan.poke(site) is not None for _ in range(n)]


def test_every_nth_trigger():
    plan = FaultSpec([SiteRule("dma.map", every_nth=3)]).compile()
    assert _pokes(plan, "dma.map", 9) == [False, False, True] * 3


def test_at_steps_trigger():
    plan = FaultSpec([SiteRule("dma.map", at_steps=(0, 2))]).compile()
    assert _pokes(plan, "dma.map", 4) == [True, False, True, False]


def test_max_fires_caps_firing():
    plan = FaultSpec([SiteRule("dma.map", every_nth=1,
                               max_fires=2)]).compile()
    assert _pokes(plan, "dma.map", 5) == [True, True, False, False,
                                          False]


def test_on_attempt_gates_firing():
    spec = FaultSpec([SiteRule("campaign.worker.crash", at_steps=(0,),
                               on_attempt=0)])
    assert spec.compile(attempt=0).poke("campaign.worker.crash")
    assert spec.compile(attempt=1).poke("campaign.worker.crash") is None


def test_unarmed_site_never_fires():
    plan = FaultSpec([SiteRule("dma.map", every_nth=1)]).compile()
    assert plan.poke("mem.slab.kmalloc") is None


def test_firing_carries_step_nth_arg():
    plan = FaultSpec([SiteRule("net.nic.truncate", every_nth=2,
                               arg=0.25)]).compile()
    plan.poke("net.nic.truncate")
    firing = plan.poke("net.nic.truncate")
    assert (firing.site, firing.step, firing.nth, firing.arg) == \
        ("net.nic.truncate", 1, 1, 0.25)


def test_probability_stream_is_deterministic():
    spec = FaultSpec([SiteRule("dma.map", probability=0.3)], seed=11)
    first_plan = spec.compile(stream=4)
    first = [first_plan.poke("dma.map") is not None for _ in range(64)]
    second_plan = spec.compile(stream=4)
    second = [second_plan.poke("dma.map") is not None
              for _ in range(64)]
    assert first == second
    assert any(first) and not all(first)


def test_probability_streams_differ_per_stream_and_site():
    spec = FaultSpec([SiteRule("dma.map", probability=0.5),
                      SiteRule("mem.slab.kmalloc", probability=0.5)],
                     seed=11)
    plan_a, plan_b = spec.compile(stream=0), spec.compile(stream=1)
    a = [plan_a.poke("dma.map") is not None for _ in range(64)]
    b = [plan_b.poke("dma.map") is not None for _ in range(64)]
    plan_c = spec.compile(stream=0)
    c = [plan_c.poke("mem.slab.kmalloc") is not None
         for _ in range(64)]
    assert a != b
    assert a != c


def test_same_spec_same_firing_sequence():
    """Satellite: identical FaultSpec + seed => identical Firing log."""
    spec = standard_spec(seed=3)

    def run():
        plan = spec.compile(stream=9)
        for i in range(40):
            for site in faults.SITES:
                plan.poke(site)
        return plan.firings

    assert run() == run()


# -- the engine --------------------------------------------------------------

def test_install_uninstall_cycle():
    plan = standard_spec().compile()
    assert faults.active() is None
    faults.install(plan)
    assert faults.active() is plan
    assert faults.active_sites == plan.sites
    with pytest.raises(FaultError, match="already installed"):
        faults.install(standard_spec().compile())
    assert faults.uninstall() is plan
    assert faults.active() is None
    assert faults.active_sites == frozenset()


def test_session_restores_previous_plan():
    outer = standard_spec().compile()
    inner = FaultSpec([SiteRule("dma.map", every_nth=1)]).compile()
    with faults.session(outer):
        with faults.session(inner):
            assert faults.active() is inner
            assert faults.active_sites == frozenset({"dma.map"})
        assert faults.active() is outer
    assert faults.active() is None


def test_session_none_is_noop():
    with faults.session(None):
        assert faults.active() is None
        assert faults.fires("dma.map") is None


def test_fires_advances_only_active_plan():
    plan = FaultSpec([SiteRule("dma.map", every_nth=1)]).compile()
    assert faults.fires("dma.map") is None          # engine inactive
    with faults.session(plan):
        assert faults.fires("dma.map") is not None
    assert plan.fired_counts() == {"dma.map": 1}


def test_fires_publishes_trace_and_metrics():
    faults.reset_fired_counts()
    plan = FaultSpec([SiteRule("dma.map", every_nth=1)]).compile()
    with trace.session(categories=("fault",)) as recorder:
        with metrics.session() as registry:
            with faults.session(plan):
                faults.fires("dma.map")
            text = metrics.prometheus_text(registry, collect=False)
    events = [e for e in recorder.events if e.category == "fault"]
    assert len(events) == 1
    assert events[0].name == "dma.map"
    assert 'repro_faults_injected_total{site="dma.map"} 1' in text
    assert faults.fired_counts()["dma.map"] >= 1


def test_injected_exceptions_subclass_real_errors():
    assert issubclass(faults.InjectedOutOfMemory, OutOfMemoryError)
    assert issubclass(faults.InjectedDmaMapError, DmaApiError)
    assert issubclass(faults.InjectedCacheError, OSError)
    assert issubclass(faults.InjectedWorkerCrash, CampaignError)
    exc = faults.InjectedOutOfMemory("mem.slab.kmalloc")
    assert exc.site == "mem.slab.kmalloc"
    assert "mem.slab.kmalloc" in str(exc)


# -- REPRO_FAULTS ------------------------------------------------------------

def test_spec_from_env_unset_and_off():
    assert faults.spec_from_env({}) is None
    for off in ("off", "0", "false", "no", ""):
        assert faults.spec_from_env({"REPRO_FAULTS": off}) is None


def test_spec_from_env_loads_plan(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(standard_spec(seed=5).to_json()))
    spec = faults.spec_from_env({"REPRO_FAULTS": str(path)})
    assert spec.seed == 5
    assert spec.sites == standard_spec().sites


def test_spec_from_env_bad_path_raises(tmp_path):
    with pytest.raises(FaultError, match="cannot load fault plan"):
        faults.spec_from_env({"REPRO_FAULTS": str(tmp_path / "nope")})
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(FaultError, match="cannot load fault plan"):
        faults.spec_from_env({"REPRO_FAULTS": str(bad)})
