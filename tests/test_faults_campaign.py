"""Self-healing campaigns: retry, stalled-worker recovery, resume over
torn JSONL, and the recoverable-fault differential invariant."""

import json

import pytest

from repro import faults
from repro.campaign.results import findings_digest, load_records
from repro.campaign.runner import CampaignConfig, run_campaign
from repro.faults import FaultSpec, SiteRule, standard_spec

SCALE = 0.08


@pytest.fixture(autouse=True)
def _clean_engine():
    yield
    faults.uninstall()


def _config(tmp_path, **overrides) -> CampaignConfig:
    settings = dict(nr_seeds=2, seed_base=1, jobs=1, base_seed=2021,
                    mutations_per_seed=2, scale=SCALE,
                    output=str(tmp_path / "results.jsonl"))
    settings.update(overrides)
    return CampaignConfig(**settings)


def _crash_once_spec() -> FaultSpec:
    """Every seed crashes on its first attempt; a retry heals it."""
    return FaultSpec([SiteRule("campaign.worker.crash", at_steps=(0,),
                               on_attempt=0)])


# -- satellite: --resume over a truncated trailing record --------------------

def test_resume_skips_truncated_trailing_record(tmp_path, capsys):
    config = _config(tmp_path)
    assert run_campaign(config).all_ok

    # simulate the crash-mid-append the JSONL format exists to survive
    lines = open(config.output).read().splitlines()
    assert len(lines) == 2
    damaged_seed = json.loads(lines[-1])["seed"]
    with open(config.output, "w") as handle:
        handle.write(lines[0] + "\n")
        handle.write(lines[1][:len(lines[1]) // 2])

    summary = run_campaign(_config(tmp_path, resume=True))
    err = capsys.readouterr().err
    assert "truncated/corrupt record line(s)" in err
    assert "re-run" in err
    assert summary.nr_seeds == 2 and summary.all_ok
    records = load_records(config.output)
    assert records[damaged_seed]["status"] == "ok"


def test_resume_without_damage_warns_nothing(tmp_path, capsys):
    config = _config(tmp_path)
    run_campaign(config)
    run_campaign(_config(tmp_path, resume=True))
    assert "truncated" not in capsys.readouterr().err


# -- satellite/tentpole: retry heals injected worker crashes -----------------

def test_retry_heals_injected_crash(tmp_path):
    config = _config(tmp_path,
                     fault_spec=_crash_once_spec().to_json(), retry=1)
    summary = run_campaign(config)
    assert summary.all_ok and summary.nr_ok == 2
    records = load_records(config.output)
    assert all(record["attempt"] == 1 for record in records.values())
    # the failed first attempts stay in the JSONL audit trail
    lines = [json.loads(line)
             for line in open(config.output).read().splitlines()]
    audited = [line for line in lines if line["status"] == "fault"]
    assert len(audited) == 2
    assert all(line["will_retry"] for line in audited)
    assert all("campaign.worker.crash" in line["error"]
               for line in audited)


def test_injected_crash_without_retry_names_site(tmp_path):
    config = _config(tmp_path,
                     fault_spec=_crash_once_spec().to_json(), retry=0)
    summary = run_campaign(config)
    assert summary.nr_failed == 2
    assert all("fault" in error and "campaign.worker.crash" in error
               for _seed, error in summary.failures)


def test_retry_budget_exhausts_on_persistent_crash(tmp_path):
    # no on_attempt gate: the crash reproduces on every attempt
    spec = FaultSpec([SiteRule("campaign.worker.crash", at_steps=(0,))])
    config = _config(tmp_path, nr_seeds=1, fault_spec=spec.to_json(),
                     retry=2)
    summary = run_campaign(config)
    assert summary.nr_failed == 1
    lines = [json.loads(line)
             for line in open(config.output).read().splitlines()]
    assert len(lines) == 3          # 2 audited retries + final failure
    assert [line.get("attempt", 0) for line in lines] == [0, 1, 2]


# -- satellite: fault schedules are identical across jobs --------------------

def _tooling_spec() -> FaultSpec:
    return FaultSpec([
        SiteRule("campaign.worker.crash", at_steps=(0,), on_attempt=0),
        SiteRule("perfcache.read", every_nth=2, max_fires=4),
        SiteRule("perfcache.write", every_nth=2, max_fires=4),
        SiteRule("perfcache.corrupt", every_nth=2, max_fires=4),
    ], seed=9)


def test_fault_campaign_identical_jobs1_vs_jobs4(tmp_path):
    results = {}
    for jobs in (1, 4):
        config = _config(tmp_path / f"j{jobs}", nr_seeds=3, jobs=jobs,
                         fault_spec=_tooling_spec().to_json(), retry=1,
                         cache_dir=str(tmp_path / f"j{jobs}-cache"))
        summary = run_campaign(config)
        assert summary.all_ok
        results[jobs] = load_records(config.output)
    assert findings_digest(results[1]) == findings_digest(results[4])
    assert {s: r["status"] for s, r in results[1].items()} == \
        {s: r["status"] for s, r in results[4].items()}


# -- tentpole: the recoverable-plan differential invariant -------------------

def test_recoverable_tooling_faults_keep_findings_identical(tmp_path):
    baseline = _config(tmp_path / "base",
                       cache_dir=str(tmp_path / "cache"))
    assert run_campaign(baseline).all_ok

    faulted = _config(tmp_path / "faulted",
                      cache_dir=str(tmp_path / "cache"),
                      fault_spec=_tooling_spec().to_json(), retry=1)
    assert run_campaign(faulted).all_ok

    assert findings_digest(load_records(baseline.output)) == \
        findings_digest(load_records(faulted.output))


# -- satellite: --retry-stalled upgrades STALLED into recovery ---------------

def test_retry_stalled_kills_and_requeues(tmp_path, monkeypatch):
    from repro.campaign import runner
    monkeypatch.setattr(runner, "HEARTBEAT_POLL_S", 0.25)
    hang = FaultSpec([SiteRule("campaign.worker.hang", at_steps=(0,),
                               on_attempt=0, arg=6.0)])
    config = _config(tmp_path, nr_seeds=2, jobs=2, scale=0.06,
                     fault_spec=hang.to_json(),
                     retry=1, retry_stalled=1,
                     heartbeat_dir=str(tmp_path / "beats"),
                     stall_after_s=1.0, timeout_s=60.0)
    summary = run_campaign(config)
    assert summary.all_ok and summary.nr_ok == 2
    lines = [json.loads(line)
             for line in open(config.output).read().splitlines()]
    stalled = [line for line in lines if line["status"] == "stalled"]
    assert stalled, "no stalled worker was detected and recovered"
    assert all(line["will_retry"] for line in stalled)
    final = load_records(config.output)
    assert all(record["status"] == "ok" for record in final.values())


# -- the chaos harness -------------------------------------------------------

def test_chaos_standard_plan_recovers_everywhere(tmp_path):
    from repro.faults.chaos import format_chaos_report, run_chaos
    report = run_chaos(standard_spec(), str(tmp_path), rounds=40,
                       commands=48, profile_boots=4, campaign_seeds=2,
                       campaign_scale=SCALE, retry=2)
    rendered = format_chaos_report(report)
    assert report.ok, rendered
    assert report.nr_sites_fired >= 8
    assert report.digests_match
    assert report.nr_fault_events > 0
    assert "chaos verdict: PASS" in rendered


def test_chaos_unrecoverable_plan_names_site(tmp_path):
    from repro.faults.chaos import format_chaos_report, run_chaos
    spec = FaultSpec([SiteRule("campaign.worker.crash", at_steps=(0,))])
    report = run_chaos(spec, str(tmp_path), rounds=4, commands=4,
                       profile_boots=2, campaign_seeds=1,
                       campaign_scale=0.06, retry=1)
    assert not report.ok
    assert report.campaign.unrecovered_site == "campaign.worker.crash"
    assert "UNRECOVERED FAULT at campaign.worker.crash" in \
        format_chaos_report(report)
