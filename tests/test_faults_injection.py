"""Injection sites in the kernel and tooling layers, and the recovery
paths that absorb them."""

import os
import warnings

import pytest

from repro import faults
from repro.errors import DmaApiError, OutOfMemoryError
from repro.faults import FaultSpec, SiteRule, standard_spec
from repro.perfcache.store import PerfCache


@pytest.fixture(autouse=True)
def _clean_engine():
    yield
    faults.uninstall()


def _plan(*rules, stream=0):
    return FaultSpec(list(rules)).compile(stream=stream)


# -- kernel allocator sites --------------------------------------------------

def test_slab_kmalloc_injected_oom(bare_kernel):
    with faults.session(_plan(SiteRule("mem.slab.kmalloc",
                                       every_nth=1))):
        with pytest.raises(OutOfMemoryError) as info:
            bare_kernel.slab.kmalloc(256)
    assert isinstance(info.value, faults.InjectedFault)
    assert info.value.site == "mem.slab.kmalloc"
    # engine uninstalled: same call succeeds
    assert bare_kernel.slab.kmalloc(256)


def test_buddy_alloc_injected_oom(bare_kernel):
    with faults.session(_plan(SiteRule("mem.buddy.alloc",
                                       every_nth=1))):
        with pytest.raises(OutOfMemoryError):
            bare_kernel.buddy.alloc_pages(0)
    assert bare_kernel.buddy.alloc_pages(0)


def test_page_frag_injected_oom(bare_kernel):
    with faults.session(_plan(SiteRule("mem.page_frag.alloc",
                                       every_nth=1))):
        with pytest.raises(OutOfMemoryError):
            bare_kernel.page_frag.alloc(1024)
    assert bare_kernel.page_frag.alloc(1024)


def test_dma_map_injected_failure(kernel):
    kva = kernel.slab.kmalloc(512)
    with faults.session(_plan(SiteRule("dma.map", every_nth=1))):
        with pytest.raises(DmaApiError) as info:
            kernel.dma.dma_map_single("eth0", kva, 512, "DMA_TO_DEVICE")
    assert isinstance(info.value, faults.InjectedDmaMapError)
    # a non-injected map still works afterwards
    assert kernel.dma.dma_map_single("eth0", kva, 512, "DMA_TO_DEVICE")


# -- IOMMU sites -------------------------------------------------------------

def test_iotlb_eviction_storm(kernel):
    from repro.sim.workload import run_storage_workload
    plan = _plan(SiteRule("iommu.iotlb.evict", every_nth=2, arg=0.5))
    with faults.session(plan):
        stats = run_storage_workload(kernel, commands=16)
    assert plan.fired_counts().get("iommu.iotlb.evict", 0) > 0
    assert kernel.iommu.iotlb.stats.evictions > 0
    assert stats.commands == 16  # correctness survives the storm


def test_fq_delayed_drain(kernel):
    kva = kernel.slab.kmalloc(512)
    iova = kernel.dma.dma_map_single("eth0", kva, 512, "DMA_TO_DEVICE")
    kernel.dma.dma_unmap_single("eth0", iova, 512, "DMA_TO_DEVICE")
    policy = kernel.iommu.policy
    with faults.session(_plan(SiteRule("iommu.fq.delay",
                                       every_nth=1, max_fires=1))):
        policy.flush_now()
    assert policy.stats.delayed_flushes == 1
    policy.flush_now()   # the next drain works normally
    assert policy.stats.delayed_flushes == 1


# -- net sites ride the compile-ping workload --------------------------------

def test_rx_drop_and_truncate_recovered(kernel):
    from repro.sim.workload import run_compile_and_ping
    plan = _plan(SiteRule("net.ring.rx_drop", every_nth=5,
                          max_fires=3),
                 SiteRule("net.nic.truncate", every_nth=3,
                          max_fires=3, arg=0.5))
    nic = kernel.nics["eth0"]
    with faults.session(plan):
        stats = run_compile_and_ping(kernel, nic, rounds=30)
    assert nic.stats.rx_ring_drops > 0
    assert nic.stats.rx_truncated > 0
    assert stats.pings > 0           # most pings still make it


def test_workloads_survive_standard_kernel_plan(kernel):
    from repro.sim.workload import (run_compile_and_ping,
                                    run_storage_workload)
    kernel_spec, _tooling = standard_spec().split()
    nic = kernel.nics["eth0"]
    with faults.session(kernel_spec.compile(stream=0)):
        ping = run_compile_and_ping(kernel, nic, rounds=40)
    assert ping.faults_recovered > 0
    with faults.session(kernel_spec.compile(stream=1)):
        storage = run_storage_workload(kernel, commands=48)
    assert storage.faults_recovered > 0


def test_workload_fault_schedule_is_deterministic():
    """Satellite: same spec + seed => identical firing sequence."""
    from repro.sim.kernel import Kernel
    from repro.sim.workload import run_compile_and_ping
    kernel_spec, _tooling = standard_spec(seed=3).split()

    def run():
        kernel = Kernel(seed=7, phys_mb=256, boot_jitter_pages=0,
                        boot_jitter_blocks=0)
        nic = kernel.add_nic("eth0")
        plan = kernel_spec.compile(stream=2)
        with faults.session(plan):
            run_compile_and_ping(kernel, nic, rounds=25)
        return plan.firings

    first, second = run(), run()
    assert first == second
    assert first  # the plan actually fired


# -- perfcache sites and the degrade-to-memory path --------------------------

def _codec():
    return dict(encode=lambda obj: obj, decode=lambda payload: payload)


def test_perfcache_injected_read_error_recomputes(tmp_path):
    writer = PerfCache(str(tmp_path))
    writer.cached("parse", "k1", lambda: {"v": 1}, **_codec())

    reader = PerfCache(str(tmp_path))
    with faults.session(_plan(SiteRule("perfcache.read",
                                       every_nth=1, max_fires=1))):
        value = reader.cached("parse", "k1", lambda: {"v": 1},
                              **_codec())
    assert value == {"v": 1}
    assert reader.stats.corrupt == 1
    assert not reader.degraded     # injected I/O errors never degrade


def test_perfcache_injected_corruption_rejected(tmp_path):
    writer = PerfCache(str(tmp_path))
    writer.cached("parse", "k1", lambda: {"v": 1}, **_codec())

    reader = PerfCache(str(tmp_path))
    with faults.session(_plan(SiteRule("perfcache.corrupt",
                                       every_nth=1, max_fires=1))):
        value = reader.cached("parse", "k1", lambda: {"v": 2},
                              **_codec())
    # the bit-flipped entry fails validation; the compute wins
    assert value == {"v": 2}
    assert reader.stats.corrupt == 1
    # and the recompute re-persisted a healthy entry: a clean reader
    # gets a disk hit (its compute is never called)
    clean = PerfCache(str(tmp_path))
    assert clean.cached("parse", "k1", pytest.fail,
                        **_codec()) == {"v": 2}
    assert clean.stats.disk_hits == 1


def test_perfcache_injected_write_error_does_not_degrade(tmp_path):
    cache = PerfCache(str(tmp_path))
    with faults.session(_plan(SiteRule("perfcache.write",
                                       every_nth=1, max_fires=1))):
        value = cache.cached("parse", "k1", lambda: {"v": 1},
                             **_codec())
    assert value == {"v": 1}
    assert cache.stats.write_errors == 1
    assert not cache.degraded
    # memory tier still serves it
    assert cache.cached("parse", "k1", lambda: {"v": 2},
                        **_codec()) == {"v": 1}


def test_perfcache_degrades_on_real_oserror(tmp_path, monkeypatch):
    cache = PerfCache(str(tmp_path / "cache"))

    def deny(*_args, **_kwargs):
        raise PermissionError(13, "Permission denied")

    monkeypatch.setattr("repro.perfcache.store.os.makedirs", deny)
    with pytest.warns(RuntimeWarning, match="disk tier .* unusable"):
        value = cache.cached("parse", "k1", lambda: {"v": 1},
                             **_codec())
    assert value == {"v": 1}
    assert cache.degraded
    assert not cache.persist_stats()
    # exactly one warning: later lookups recompute silently
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert cache.cached("parse", "k2", lambda: {"v": 2},
                            **_codec()) == {"v": 2}
    assert not [w for w in caught
                if issubclass(w.category, RuntimeWarning)]
    assert cache.stats.write_errors == 1   # no further write attempts


@pytest.mark.skipif(os.geteuid() == 0,
                    reason="root ignores directory permissions")
def test_perfcache_degrades_on_readonly_directory(tmp_path):
    root = tmp_path / "ro"
    root.mkdir()
    os.chmod(root, 0o500)
    try:
        cache = PerfCache(str(root / "cache"))
        with pytest.warns(RuntimeWarning, match="disk tier .* unusable"):
            value = cache.cached("parse", "k1", lambda: {"v": 1},
                                 **_codec())
        assert value == {"v": 1}
        assert cache.degraded
    finally:
        os.chmod(root, 0o700)
