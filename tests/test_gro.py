"""GRO: linear segments become a frags-bearing aggregate (Figure 9)."""

from repro.net.gro import FLAG_PUSH, GRO_MAX_SEGS
from repro.net.proto import HEADER_LEN, PROTO_TCP, PROTO_UDP, make_packet
from repro.sim.kernel import Kernel


def tcp_seg(flow, payload, push=False, dst=0x0B00_0001):
    return make_packet(dst_ip=dst, proto=PROTO_TCP, flow_id=flow,
                       flags=FLAG_PUSH if push else 0, dst_port=80,
                       payload=payload)


def make_forwarding_kernel():
    k = Kernel(seed=7, phys_mb=256, forwarding=True)
    k.add_nic("eth0")
    return k, k.nics["eth0"]


def test_tcp_segments_buffer_until_push():
    k, nic = make_forwarding_kernel()
    nic.device_receive(tcp_seg(5, b"a" * 100))
    nic.napi_poll()
    assert k.stack.rx_backlog == []  # held by GRO
    nic.device_receive(tcp_seg(5, b"b" * 100))
    nic.napi_poll()
    nic.device_receive(tcp_seg(5, b"c" * 100, push=True))
    nic.napi_poll()
    assert len(k.stack.rx_backlog) == 1
    skb, _nic = k.stack.rx_backlog[0]
    assert skb.source == "gro"
    k.stack.process_backlog()


def test_aggregate_carries_member_frags():
    """"the GRO converts multiple linear sk_buff buffers ... into a
    single sk_buff with multiple fragments"."""
    k, nic = make_forwarding_kernel()
    payloads = [bytes([65 + i]) * 90 for i in range(3)]
    for i, payload in enumerate(payloads):
        nic.device_receive(tcp_seg(6, payload, push=(i == 2)))
        nic.napi_poll()
    skb, _nic = k.stack.rx_backlog[0]
    frags = skb.frags()
    assert len(frags) == 3
    for frag, payload in zip(frags, payloads):
        assert skb.frag_bytes(frag) == payload
    assert len(skb.gro_members) == 3
    k.stack.process_backlog()


def test_frag_entries_are_real_struct_page_pointers():
    k, nic = make_forwarding_kernel()
    for i in range(2):
        nic.device_receive(tcp_seg(7, b"x" * 80, push=(i == 1)))
        nic.napi_poll()
    skb, _ = k.stack.rx_backlog[0]
    for frag in skb.frags():
        pfn = k.addr_space.pfn_of_struct_page(frag.page_ptr)
        assert 0 <= pfn < k.phys.nr_pages
    k.stack.process_backlog()


def test_single_segment_flow_passes_through():
    k, nic = make_forwarding_kernel()
    nic.device_receive(tcp_seg(8, b"solo", push=True))
    nic.napi_poll()
    skb, _ = k.stack.rx_backlog[0]
    assert skb.source == "rx"  # not aggregated
    k.stack.process_backlog()


def test_udp_bypasses_gro():
    k, nic = make_forwarding_kernel()
    nic.device_receive(make_packet(dst_ip=0x0B00_0001, proto=PROTO_UDP,
                                   flow_id=9, dst_port=53, payload=b"u"))
    nic.napi_poll()
    assert len(k.stack.rx_backlog) == 1
    k.stack.process_backlog()


def test_flush_at_max_segments():
    k, nic = make_forwarding_kernel()
    for _ in range(GRO_MAX_SEGS):
        nic.device_receive(tcp_seg(10, b"m" * 64))
        nic.napi_poll()
    assert len(k.stack.rx_backlog) == 1
    k.stack.process_backlog()


def test_aggregate_header_totals_payload():
    k, nic = make_forwarding_kernel()
    for i in range(3):
        nic.device_receive(tcp_seg(11, b"p" * 100, push=(i == 2)))
        nic.napi_poll()
    skb, _ = k.stack.rx_backlog[0]
    from repro.net.proto import decode_header
    header = decode_header(skb.data())
    assert header.payload_len == 300
    k.stack.process_backlog()


def test_forwarded_aggregate_maps_member_pages_for_read():
    """Figure 9 end-to-end: the forwarded aggregate's TX mapping grants
    the device READ on the attacker-written member pages."""
    k, nic = make_forwarding_kernel()
    for i in range(2):
        nic.device_receive(tcp_seg(12, b"leakme-%d" % i + b"!" * 72,
                                   push=(i == 1)))
        nic.napi_poll()
    k.stack.process_backlog()
    fetched = nic.device_fetch_tx()
    assert fetched
    _desc, wire = fetched[0]
    assert b"leakme-0" in wire and b"leakme-1" in wire
    nic.tx_clean()
    assert k.stack.stats.oopses == 0
