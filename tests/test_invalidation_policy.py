"""Invalidation policies and IOTLB internals, tested directly."""

import pytest

from repro.iommu.domain import IovaEntry
from repro.iommu.invalidation import (DeferredInvalidation,
                                      StrictInvalidation)
from repro.iommu.iotlb import Iotlb
from repro.iommu.perms import DmaPerm
from repro.sim.clock import SimClock


def test_strict_invalidates_synchronously():
    clock = SimClock()
    iotlb = Iotlb()
    policy = StrictInvalidation(clock, iotlb)
    iotlb.insert(1, IovaEntry(0x10, 5, DmaPerm.READ))
    policy.on_unmap(1, 0x10)
    assert not iotlb.contains(1, 0x10)
    assert policy.stats.sync_invalidations == 1
    assert policy.stats.cycles_spent == 2000
    assert policy.max_window_us() == 0.0


def test_strict_post_flush_runs_immediately():
    policy = StrictInvalidation(SimClock(), Iotlb())
    ran = []
    policy.queue_post_flush(lambda: ran.append(1))
    assert ran == [1]


def test_deferred_batches_until_timer():
    clock = SimClock()
    iotlb = Iotlb()
    policy = DeferredInvalidation(clock, iotlb, flush_period_us=1000.0)
    for i in range(5):
        iotlb.insert(1, IovaEntry(0x10 + i, 5 + i, DmaPerm.READ))
        policy.on_unmap(1, 0x10 + i)
    assert policy.nr_pending == 5
    assert len(iotlb) == 5  # nothing invalidated yet
    clock.advance_us(1001.0)
    assert len(iotlb) == 0
    assert policy.stats.flushes == 1
    # one batch = one invalidation cost, amortized over 5 unmaps
    assert policy.stats.cycles_spent == 2000


def test_deferred_post_flush_runs_at_flush():
    clock = SimClock()
    policy = DeferredInvalidation(clock, Iotlb(), flush_period_us=500.0)
    ran = []
    policy.queue_post_flush(lambda: ran.append(1))
    assert ran == []
    clock.advance_us(501.0)
    assert ran == [1]


def test_deferred_idle_flush_is_free():
    clock = SimClock()
    policy = DeferredInvalidation(clock, Iotlb(), flush_period_us=100.0)
    clock.advance_us(1000.0)
    assert policy.stats.flushes == 0
    assert policy.stats.cycles_spent == 0


def test_deferred_shutdown_stops_timer():
    clock = SimClock()
    iotlb = Iotlb()
    policy = DeferredInvalidation(clock, iotlb, flush_period_us=100.0)
    policy.shutdown()
    iotlb.insert(1, IovaEntry(0x10, 5, DmaPerm.READ))
    policy.on_unmap(1, 0x10)
    clock.advance_us(1000.0)
    assert iotlb.contains(1, 0x10)  # no flush ever fires


def test_deferred_bad_period_rejected():
    with pytest.raises(ValueError):
        DeferredInvalidation(SimClock(), Iotlb(), flush_period_us=0.0)


def test_iotlb_stats_hits_misses():
    iotlb = Iotlb()
    iotlb.insert(1, IovaEntry(0x10, 5, DmaPerm.READ))
    assert iotlb.lookup(1, 0x10) is not None
    assert iotlb.lookup(1, 0x99) is None
    assert iotlb.stats.hits == 1
    assert iotlb.stats.misses == 1
    assert iotlb.flush_all() == 1
    assert iotlb.stats.global_flushes == 1


def test_iotlb_capacity_validation():
    with pytest.raises(ValueError):
        Iotlb(capacity=0)


def test_iotlb_per_domain_keys():
    iotlb = Iotlb()
    iotlb.insert(1, IovaEntry(0x10, 5, DmaPerm.READ))
    assert not iotlb.contains(2, 0x10)
    assert iotlb.invalidate(2, 0x10) is False
    assert iotlb.invalidate(1, 0x10) is True
