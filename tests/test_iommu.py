"""IOMMU core: translation, permissions, faults, IOTLB behaviour."""

import pytest

from repro.errors import DmaApiError, IommuFault
from repro.iommu.iommu import Iommu
from repro.iommu.iotlb import Iotlb
from repro.iommu.iova import IovaAllocator
from repro.iommu.perms import DmaPerm
from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.sim.clock import SimClock


def make_iommu(mode="strict"):
    phys = PhysicalMemory(1024)
    clock = SimClock()
    iommu = Iommu(phys, clock, mode=mode)
    iommu.attach_device("dev0")
    return phys, clock, iommu


def test_perm_semantics():
    """"WRITE access does not grant a DMA device READ access" (§2.2)."""
    assert DmaPerm.WRITE.allows_write
    assert not DmaPerm.WRITE.allows_read
    assert DmaPerm.READ.allows_read
    assert not DmaPerm.READ.allows_write
    assert DmaPerm.BIDIRECTIONAL.allows_read
    assert DmaPerm.BIDIRECTIONAL.allows_write


def test_direction_mapping():
    assert DmaPerm.from_dma_direction("DMA_TO_DEVICE") is DmaPerm.READ
    assert DmaPerm.from_dma_direction("DMA_FROM_DEVICE") is DmaPerm.WRITE
    with pytest.raises(ValueError):
        DmaPerm.from_dma_direction("sideways")


def test_device_write_lands_in_physical_memory():
    phys, _clock, iommu = make_iommu()
    iommu.map_page("dev0", 0x100, 7, DmaPerm.WRITE)
    iommu.device_write("dev0", (0x100 << 12) | 0x20, b"abcd")
    assert phys.read(7 * PAGE_SIZE + 0x20, 4) == b"abcd"


def test_device_read_sees_physical_memory():
    phys, _clock, iommu = make_iommu()
    phys.write(9 * PAGE_SIZE + 5, b"hello")
    iommu.map_page("dev0", 0x200, 9, DmaPerm.READ)
    assert iommu.device_read("dev0", (0x200 << 12) + 5, 5) == b"hello"


def test_unmapped_access_faults_and_logs():
    _phys, _clock, iommu = make_iommu()
    with pytest.raises(IommuFault):
        iommu.device_read("dev0", 0x300 << 12, 8)
    assert iommu.stats.faults == 1
    assert iommu.fault_log[0].reason == "no translation"


def test_write_via_read_mapping_faults():
    _phys, _clock, iommu = make_iommu()
    iommu.map_page("dev0", 0x100, 7, DmaPerm.READ)
    with pytest.raises(IommuFault) as info:
        iommu.device_write("dev0", 0x100 << 12, b"x")
    assert "denies write" in str(info.value)


def test_read_via_write_mapping_faults():
    _phys, _clock, iommu = make_iommu()
    iommu.map_page("dev0", 0x100, 7, DmaPerm.WRITE)
    with pytest.raises(IommuFault):
        iommu.device_read("dev0", 0x100 << 12, 8)


def test_cross_page_device_access():
    phys, _clock, iommu = make_iommu()
    iommu.map_page("dev0", 0x10, 3, DmaPerm.WRITE)
    iommu.map_page("dev0", 0x11, 4, DmaPerm.WRITE)
    iommu.device_write("dev0", (0x10 << 12) + PAGE_SIZE - 2, b"abcd")
    assert phys.read(3 * PAGE_SIZE + PAGE_SIZE - 2, 2) == b"ab"
    assert phys.read(4 * PAGE_SIZE, 2) == b"cd"


def test_strict_unmap_closes_access_immediately():
    _phys, _clock, iommu = make_iommu(mode="strict")
    iommu.map_page("dev0", 0x100, 7, DmaPerm.WRITE)
    iommu.device_write("dev0", 0x100 << 12, b"x")  # warm the IOTLB
    iommu.unmap_page("dev0", 0x100)
    with pytest.raises(IommuFault):
        iommu.device_write("dev0", 0x100 << 12, b"y")


def test_deferred_unmap_leaves_stale_window():
    """Figure 6: the device retains access until the periodic flush."""
    _phys, clock, iommu = make_iommu(mode="deferred")
    iommu.map_page("dev0", 0x100, 7, DmaPerm.WRITE)
    iommu.device_write("dev0", 0x100 << 12, b"x")
    iommu.unmap_page("dev0", 0x100)
    iommu.device_write("dev0", 0x100 << 12, b"y")  # stale hit succeeds
    assert iommu.stats.stale_translations == 1
    clock.advance_ms(11.0)  # periodic flush fires
    with pytest.raises(IommuFault):
        iommu.device_write("dev0", 0x100 << 12, b"z")


def test_deferred_without_iotlb_entry_faults():
    """If the translation was never cached, unmap is effective even in
    deferred mode -- the window requires a warm IOTLB."""
    _phys, _clock, iommu = make_iommu(mode="deferred")
    iommu.map_page("dev0", 0x100, 7, DmaPerm.WRITE)
    iommu.unmap_page("dev0", 0x100)  # never accessed -> never cached
    with pytest.raises(IommuFault):
        iommu.device_write("dev0", 0x100 << 12, b"y")


def test_multiple_iova_same_pfn():
    """Type (c): two IOVAs for one frame; one unmap does not revoke."""
    phys, _clock, iommu = make_iommu(mode="strict")
    iommu.map_page("dev0", 0x100, 7, DmaPerm.WRITE)
    iommu.map_page("dev0", 0x200, 7, DmaPerm.WRITE)
    domain = iommu.domain_of("dev0")
    assert domain.iova_pfns_of_pfn(7) == frozenset({0x100, 0x200})
    iommu.unmap_page("dev0", 0x100)
    iommu.device_write("dev0", 0x200 << 12, b"still here")
    assert phys.read(7 * PAGE_SIZE, 10) == b"still here"


def test_device_can_access_probe():
    _phys, _clock, iommu = make_iommu()
    iommu.map_page("dev0", 0x100, 7, DmaPerm.READ)
    assert iommu.device_can_access("dev0", 0x100 << 12, write=False)
    assert not iommu.device_can_access("dev0", 0x100 << 12, write=True)
    assert not iommu.device_can_access("dev0", 0x300 << 12, write=False)


def test_domains_are_isolated():
    phys, _clock, iommu = make_iommu()
    iommu.attach_device("dev1")
    iommu.map_page("dev0", 0x100, 7, DmaPerm.BIDIRECTIONAL)
    with pytest.raises(IommuFault):
        iommu.device_read("dev1", 0x100 << 12, 4)


def test_unknown_device_rejected():
    _phys, _clock, iommu = make_iommu()
    with pytest.raises(DmaApiError):
        iommu.domain_of("ghost")


def test_double_map_same_iova_rejected():
    _phys, _clock, iommu = make_iommu()
    iommu.map_page("dev0", 0x100, 7, DmaPerm.READ)
    with pytest.raises(DmaApiError):
        iommu.map_page("dev0", 0x100, 8, DmaPerm.READ)


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        Iommu(PhysicalMemory(16), SimClock(), mode="relaxed")


def test_iotlb_lru_eviction():
    iotlb = Iotlb(capacity=2)
    from repro.iommu.domain import IovaEntry
    iotlb.insert(1, IovaEntry(0x1, 1, DmaPerm.READ))
    iotlb.insert(1, IovaEntry(0x2, 2, DmaPerm.READ))
    iotlb.lookup(1, 0x1)  # touch 0x1 so 0x2 becomes LRU
    iotlb.insert(1, IovaEntry(0x3, 3, DmaPerm.READ))
    assert iotlb.contains(1, 0x1)
    assert not iotlb.contains(1, 0x2)
    assert iotlb.stats.evictions == 1


def test_iova_allocator_reuse_and_errors():
    allocator = IovaAllocator()
    a = allocator.alloc(2)
    b = allocator.alloc(2)
    assert a != b
    allocator.free(a)
    assert allocator.alloc(2) == a  # exact-size reuse
    with pytest.raises(DmaApiError):
        allocator.free(0x1234)
    with pytest.raises(DmaApiError):
        allocator.alloc(0)
