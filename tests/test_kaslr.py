"""KASLR: Table 1 layout, randomization alignments, translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BadAddressError, TranslationFault
from repro.kaslr.layout import (LAYOUT_REGIONS, STRUCT_PAGE_SIZE,
                                looks_like_kernel_pointer, region,
                                region_of)
from repro.kaslr.randomize import (BASE_ALIGN_BITS, KERNEL_IMAGE_SIZE,
                                   TEXT_ALIGN_BITS, randomize)
from repro.kaslr.translate import AddressSpace
from repro.sim.rng import DeterministicRng

_TB = 1 << 40
_GB = 1 << 30
_MB = 1 << 20


def test_table1_regions_match_paper():
    """The exact rows of Table 1."""
    expected = {
        "direct_map": (0xFFFF_8880_0000_0000, 64 * _TB,
                       0xFFFF_C87F_FFFF_FFFF),
        "vmalloc": (0xFFFF_C900_0000_0000, 32 * _TB,
                    0xFFFF_E8FF_FFFF_FFFF),
        "vmemmap": (0xFFFF_EA00_0000_0000, 1 * _TB,
                    0xFFFF_EAFF_FFFF_FFFF),
        "kasan_shadow": (0xFFFF_EC00_0000_0000, 16 * _TB,
                         0xFFFF_FBFF_FFFF_FFFF),
        "kernel_text": (0xFFFF_FFFF_8000_0000, 512 * _MB,
                        0xFFFF_FFFF_9FFF_FFFF),
        "modules": (0xFFFF_FFFF_A000_0000, 1520 * _MB,
                    0xFFFF_FFFF_FEFF_FFFF),
    }
    for name, (start, size, end) in expected.items():
        reg = region(name)
        assert reg.start == start
        assert reg.size == size
        assert reg.end == end


def test_region_of_classifies():
    assert region_of(0xFFFF_8880_1234_5678).name == "direct_map"
    assert region_of(0xFFFF_FFFF_8100_0000).name == "kernel_text"
    assert region_of(0x0000_7FFF_0000_0000) is None
    assert looks_like_kernel_pointer(0xFFFF_EA00_0000_0040)
    assert not looks_like_kernel_pointer(42)


def test_text_base_alignment_2mb():
    """"KASLR kernel text is aligned to 2 MB borders" (section 2.4)."""
    for seed in range(20):
        state = randomize(DeterministicRng(seed), phys_bytes=1 << 30)
        assert state.text_base % (1 << TEXT_ALIGN_BITS) == 0
        assert region("kernel_text").contains(state.text_base)
        assert state.text_base + KERNEL_IMAGE_SIZE - 1 <= \
            region("kernel_text").end


def test_base_alignment_1gb():
    """page_offset_base and vmemmap_base slide at 1 GiB granularity."""
    for seed in range(20):
        state = randomize(DeterministicRng(seed), phys_bytes=1 << 30)
        assert state.page_offset_base % (1 << BASE_ALIGN_BITS) == 0
        assert state.vmemmap_base % (1 << BASE_ALIGN_BITS) == 0
        assert region("direct_map").contains(state.page_offset_base)
        assert region("vmemmap").contains(state.vmemmap_base)


def test_kaslr_disabled_uses_region_starts():
    state = randomize(DeterministicRng(1), enabled=False)
    assert state.text_base == region("kernel_text").start
    assert state.page_offset_base == region("direct_map").start
    assert not state.enabled


def test_different_boots_different_slides():
    states = {randomize(DeterministicRng(seed),
                        phys_bytes=1 << 30).text_base
              for seed in range(16)}
    assert len(states) > 8


def make_space(seed=3, phys_bytes=256 << 20) -> AddressSpace:
    return AddressSpace(randomize(DeterministicRng(seed),
                                  phys_bytes=phys_bytes), phys_bytes)


def test_kva_paddr_roundtrip():
    space = make_space()
    kva = space.kva_of_paddr(0x1234)
    assert space.paddr_of_kva(kva) == 0x1234
    assert space.is_direct_map_kva(kva)


def test_paddr_out_of_range():
    space = make_space()
    with pytest.raises(BadAddressError):
        space.kva_of_paddr(1 << 40)
    with pytest.raises(TranslationFault):
        space.paddr_of_kva(0xFFFF_8880_0000_0000 - 8)


def test_struct_page_roundtrip():
    space = make_space()
    ptr = space.struct_page_of_pfn(77)
    assert space.pfn_of_struct_page(ptr) == 77
    assert space.is_struct_page_ptr(ptr)
    assert ptr == space.vmemmap_base + 77 * STRUCT_PAGE_SIZE


def test_struct_page_rejects_misaligned():
    space = make_space()
    ptr = space.struct_page_of_pfn(5)
    with pytest.raises(TranslationFault):
        space.pfn_of_struct_page(ptr + 4)
    assert not space.is_struct_page_ptr(ptr + 4)


def test_kva_of_struct_page_translation():
    """Section 2.4's struct page -> KVA arithmetic (Poisoned TX step 3)."""
    space = make_space()
    ptr = space.struct_page_of_pfn(123)
    assert space.kva_of_struct_page(ptr, 0x400) == \
        space.kva_of_pfn(123, 0x400)
    with pytest.raises(BadAddressError):
        space.kva_of_struct_page(ptr, 1 << 13)


def test_symbol_kva_within_image():
    space = make_space()
    assert space.symbol_kva(0x1000) == space.text_base + 0x1000
    with pytest.raises(BadAddressError):
        space.symbol_kva(KERNEL_IMAGE_SIZE)


def test_is_text_kva():
    space = make_space()
    assert space.is_text_kva(space.text_base)
    assert not space.is_text_kva(space.text_base + KERNEL_IMAGE_SIZE)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**16 - 1), st.integers(0, 4095))
def test_property_low_bits_invariant(pfn, offset):
    """The low 12 bits of a KVA equal the page offset (footnote 5)."""
    space = make_space()
    kva = space.kva_of_pfn(pfn, offset)
    assert kva & 0xFFF == offset
