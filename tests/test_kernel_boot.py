"""Kernel facade: boot composition, determinism, helpers."""

import pytest

from repro.sim.kernel import Kernel


def test_kaslr_differs_across_boots():
    bases = {Kernel(seed=5, boot_index=i, phys_mb=128)
             .addr_space.text_base for i in range(6)}
    assert len(bases) > 3


def test_build_invariant_across_boots():
    """Gadget/symbol offsets are a property of the build, not the boot."""
    a = Kernel(seed=5, boot_index=0, phys_mb=128)
    b = Kernel(seed=5, boot_index=1, phys_mb=128)
    assert a.image.text == b.image.text
    assert a.image.symbol("init_net").image_offset == \
        b.image.symbol("init_net").image_offset


def test_same_boot_is_reproducible():
    a = Kernel(seed=5, boot_index=3, phys_mb=128)
    b = Kernel(seed=5, boot_index=3, phys_mb=128)
    assert a.addr_space.text_base == b.addr_space.text_base
    assert a.slab.kmalloc(512) == b.slab.kmalloc(512)


def test_boot_jitter_shifts_allocations():
    a = Kernel(seed=5, boot_index=0, phys_mb=128, boot_jitter_pages=0,
               boot_jitter_blocks=0)
    b = Kernel(seed=5, boot_index=0, phys_mb=128, boot_jitter_pages=0,
               boot_jitter_blocks=2)
    pfn_a = a.buddy.alloc_pages(3)
    pfn_b = b.buddy.alloc_pages(3)
    assert pfn_a != pfn_b


def test_symbol_address_is_slid():
    k = Kernel(seed=5, phys_mb=128)
    offset = k.image.symbol("commit_creds").image_offset
    assert k.symbol_address("commit_creds") == \
        k.addr_space.text_base + offset
    assert k.init_net_address() == k.symbol_address("init_net")


def test_cpu_read_write_roundtrip(bare_kernel):
    kva = bare_kernel.slab.kmalloc(64)
    bare_kernel.cpu_write(kva, b"hello kernel")
    assert bare_kernel.cpu_read(kva, 12) == b"hello kernel"


def test_poll_and_process_runs_all_cpus(kernel):
    from repro.net.proto import PROTO_UDP, make_packet
    nic = kernel.nics["eth0"]
    nic.device_receive(make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                                   dst_port=9999, payload=b"x"), cpu=1)
    processed = kernel.poll_and_process()
    assert processed == 1


def test_kaslr_disabled_kernel():
    k = Kernel(seed=5, phys_mb=128, kaslr=False)
    from repro.kaslr.layout import region
    assert k.addr_space.text_base == region("kernel_text").start


def test_report_table_rendering():
    from repro.report.tables import PaperComparison, render_table
    comparison = PaperComparison("demo")
    comparison.add("metric-a", 10, 11)
    comparison.note("shapes match")
    text = comparison.render()
    assert "metric-a" in text and "shapes match" in text
    table = render_table(["x", "y"], [["1", "2"], ["333", "4"]])
    assert "333" in table
