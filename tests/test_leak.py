"""LeakScanner: pointer classification and KASLR recovery arithmetic."""

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kaslr.layout import region
from repro.kaslr.leak import LeakScanner
from repro.kaslr.randomize import randomize
from repro.kaslr.translate import AddressSpace
from repro.sim.rng import DeterministicRng

PHYS = 256 << 20


def make_space(seed):
    return AddressSpace(randomize(DeterministicRng(seed),
                                  phys_bytes=PHYS), PHYS)


def page_with(values_at: dict[int, int]) -> bytes:
    page = bytearray(4096)
    for offset, value in values_at.items():
        struct.pack_into("<Q", page, offset, value)
    return bytes(page)


def test_scan_finds_planted_pointers():
    space = make_space(1)
    page = page_with({64: space.kva_of_paddr(0x5000),
                      128: space.struct_page_of_pfn(9),
                      256: space.text_base + 0x1234,
                      512: 0x1234})  # not a kernel pointer
    leaks = LeakScanner().scan(page)
    regions = {leak.offset: leak.region.name for leak in leaks}
    assert regions[64] == "direct_map"
    assert regions[128] == "vmemmap"
    assert regions[256] == "kernel_text"
    assert 512 not in regions


def test_scan_reports_base_offset():
    space = make_space(1)
    page = page_with({8: space.text_base})
    leaks = LeakScanner().scan(page, base_offset=0x1000)
    assert leaks[0].offset == 0x1008


def test_text_base_recovery_via_symbol():
    """The init_net technique: low 21 bits identify the symbol."""
    space = make_space(2)
    init_net_offset = 0x805FC0
    leaked = space.text_base + init_net_offset
    leaks = LeakScanner().scan(page_with({0: leaked}))
    recovered = LeakScanner().recover_text_base(leaks, init_net_offset)
    assert recovered == space.text_base


def test_text_base_recovery_rejects_mismatched_low_bits():
    space = make_space(2)
    wrong = space.text_base + 0x805FC8  # low bits off by 8
    leaks = LeakScanner().scan(page_with({0: wrong}))
    assert LeakScanner().recover_text_base(leaks, 0x805FC0) is None


def test_text_base_recovery_none_without_text_leaks():
    space = make_space(2)
    leaks = LeakScanner().scan(page_with({0: space.kva_of_paddr(0)}))
    assert LeakScanner().recover_text_base(leaks, 0x1000) is None


def test_vmemmap_base_recovery():
    """Rounding a struct page pointer down to 1 GiB (<=64 GiB RAM)."""
    space = make_space(3)
    ptr = space.struct_page_of_pfn(4321)
    scanner = LeakScanner()
    assert scanner.recover_vmemmap_base(ptr) == space.vmemmap_base
    assert scanner.pfn_of_leaked_struct_page(ptr) == 4321


def test_direct_map_leak_yields_base_and_pfn():
    """Section 2.4: 30-bit arithmetic on a sub-1-GiB direct-map KVA."""
    space = make_space(4)
    kva = space.kva_of_pfn(777, 0x123)
    base, pfn = LeakScanner().recover_bases_from_direct_map_leak(kva)
    assert base == space.page_offset_base
    assert pfn == 777


def test_page_offset_base_from_pair():
    space = make_space(5)
    kva = space.kva_of_pfn(99, 0x88)
    scanner = LeakScanner()
    assert scanner.page_offset_base_from_pair(99, kva) == \
        space.page_offset_base


def test_page_offset_base_voting_filters_bad_guesses():
    """Wrong PFN guesses fail the 1 GiB alignment filter; the right
    guess wins even when outnumbered (RingFlood recovery)."""
    space = make_space(6)
    kva = space.kva_of_pfn(500, 0x40)
    pairs = [(1, kva), (2, kva), (500, kva), (777, kva), (12345, kva)]
    recovered = LeakScanner().recover_page_offset_base(pairs)
    assert recovered == space.page_offset_base


def test_page_offset_base_voting_empty():
    assert LeakScanner().recover_page_offset_base([]) is None


def test_scanner_alignment_validation():
    import pytest
    with pytest.raises(ValueError):
        LeakScanner(alignment=3)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31), st.integers(0, PHYS // 4096 - 1))
def test_property_recovery_matches_any_boot(seed, pfn):
    """For any KASLR state and frame, the 30-bit arithmetic recovers
    the exact base and PFN (physical memory < 1 GiB)."""
    space = make_space(seed)
    kva = space.kva_of_pfn(pfn)
    base, got_pfn = LeakScanner().recover_bases_from_direct_map_leak(kva)
    assert (base, got_pfn) == (space.page_offset_base, pfn)
