"""Object lifecycle edge cases across the stack."""

import pytest

from repro.net.gro import FLAG_PUSH
from repro.net.proto import PROTO_TCP, PROTO_UDP, make_packet
from repro.sim.kernel import Kernel


def test_dropped_gro_aggregate_frees_members():
    """A GRO aggregate that gets dropped (no forwarding) releases its
    member skbs' memory cleanly."""
    kernel = Kernel(seed=7, phys_mb=256, forwarding=False)
    nic = kernel.add_nic("eth0")
    live_before = kernel.slab.nr_live_objects
    for i in range(3):
        nic.device_receive(make_packet(
            dst_ip=0x0B00_0001, proto=PROTO_TCP, flow_id=44,
            flags=FLAG_PUSH if i == 2 else 0, dst_port=80,
            payload=b"m" * 80))
        nic.napi_poll()
    kernel.stack.process_backlog()
    assert kernel.stack.stats.dropped == 1
    assert kernel.stack.stats.skbs_freed == 4  # aggregate + 3 members
    # sk_buff structs all returned (ring refills may add live objects,
    # so compare the skb-struct count indirectly via no oopses)
    assert kernel.stack.stats.oopses == 0


def test_echo_with_frags_frees_owned_buffers():
    kernel = Kernel(seed=7, phys_mb=256)
    nic = kernel.add_nic("eth0")
    nic.device_receive(make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                                   dst_port=7, payload=b"Q" * 900))
    kernel.poll_and_process()
    nic.device_fetch_tx()
    nic.tx_clean()
    # RX buffer + its skb, TX skb + its frag: all freed without error
    assert kernel.stack.stats.skbs_freed == 2
    assert kernel.stack.stats.oopses == 0


def test_clone_then_double_release():
    kernel = Kernel(seed=7, phys_mb=256)
    kernel.add_nic("eth0")
    skb = kernel.skb_alloc.alloc_skb(256)
    skb.clone_ref()
    kernel.stack.kfree_skb(skb)  # drops dataref to 1, frees skb struct
    assert skb.freed
    assert skb.get_dataref() == 1


def test_corrupt_nr_frags_is_an_oops_not_a_crash():
    """A device scribbling an impossible frag count triggers the BUG
    path (recorded oops), never an unhandled simulation error."""
    kernel = Kernel(seed=7, phys_mb=256, forwarding=True)
    nic = kernel.add_nic("eth0")
    nic.device_receive(make_packet(dst_ip=0x0B00_0001, proto=PROTO_UDP,
                                   dst_port=53, payload=b"x" * 32))
    nic.napi_poll()
    skb, _nic = kernel.stack.rx_backlog[0]
    info = skb.shared_info()
    info.write("nr_frags", 99)
    kernel.stack.process_backlog()
    assert kernel.stack.stats.oopses == 1


def test_bounce_unmap_unknown_rejected():
    from repro.errors import DmaApiError
    kernel = Kernel(seed=7, phys_mb=256, bounce_buffers=True)
    kernel.iommu.attach_device("dev0")
    with pytest.raises(DmaApiError):
        kernel.dma.dma_unmap_single("dev0", 0xF000, 64, "DMA_TO_DEVICE")


def test_bounce_map_page_roundtrip():
    kernel = Kernel(seed=7, phys_mb=256, bounce_buffers=True)
    kernel.iommu.attach_device("dev0")
    kva = kernel.slab.kmalloc(4096)
    pfn = kernel.addr_space.pfn_of_kva(kva)
    iova = kernel.dma.dma_map_page("dev0", pfn, 0x40, 64,
                                   "DMA_FROM_DEVICE")
    kernel.iommu.device_write("dev0", iova, b"bounced!")
    kernel.dma.dma_unmap_page("dev0", iova, 64, "DMA_FROM_DEVICE")
    assert kernel.cpu_read(kva + 0x40, 8) == b"bounced!"
