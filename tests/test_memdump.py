"""The §3.1 memory-dump TOCTTOU attack."""

from repro.core.attacks.kaslr_leak import break_kaslr_via_tx
from repro.core.attacks.memdump import (CommandQueueDriver,
                                        run_memory_dump)
from repro.core.attacks.ringflood import make_attacker
from repro.mem.accounting import AllocSite
from repro.sim.kernel import Kernel


def make_setup():
    kernel = Kernel(seed=91, phys_mb=256)
    kernel.add_nic("eth0")
    driver = CommandQueueDriver(kernel)
    device = make_attacker(kernel, "hba0")
    return kernel, driver, device


def test_memory_dump_reads_planted_secret():
    kernel, driver, device = make_setup()
    # the attacker needs page_offset_base; the TX leak supplies it
    nic_device = make_attacker(kernel, "eth0")
    assert break_kaslr_via_tx(kernel, kernel.nics["eth0"], nic_device)
    device.knowledge.page_offset_base = \
        nic_device.knowledge.page_offset_base

    secret_kva = kernel.slab.kmalloc(64, site=AllocSite("vault"))
    kernel.cpu_write(secret_kva, b"DUMPME-SECRET-0123")
    secret_pfn = kernel.addr_space.pfn_of_kva(secret_kva)

    report = run_memory_dump(kernel, driver, device,
                             start_pfn=secret_pfn, nr_pages=2)
    assert report.pages_dumped == 2
    # re-dump the exact page and look for the secret
    target_kva = device.knowledge.kva_of_pfn(secret_pfn)
    driver.submit_io(0, secret_kva, 64)
    base = driver.ctrl_iova
    device.dma_write_u64(base, target_kva)
    device.dma_write_u64(base + 8, 4096)
    iova, length = driver.kick_io(0)
    page = device.dma_read(iova, length)
    driver.complete_io(iova, length)
    assert b"DUMPME-SECRET-0123" in page


def test_toc_tou_window_is_the_bug():
    """Without the device's interference the driver maps what it
    intended -- the vulnerability is the post-check modification."""
    kernel, driver, device = make_setup()
    buf = kernel.slab.kmalloc(64, site=AllocSite("honest_io"))
    kernel.cpu_write(buf, b"honest-payload!!")
    driver.submit_io(0, buf, 64)
    iova, length = driver.kick_io(0)
    assert device.dma_read(iova, 16) == b"honest-payload!!"
    driver.complete_io(iova, length)


def test_dump_is_read_only_no_escalation():
    kernel, driver, device = make_setup()
    device.knowledge.page_offset_base = \
        kernel.addr_space.page_offset_base
    run_memory_dump(kernel, driver, device, nr_pages=4)
    assert not kernel.executor.creds.is_root
    assert kernel.stack.stats.oopses == 0
