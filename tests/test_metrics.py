"""Unit tests for the metrics registry, exporters, and heartbeats."""

import json
import time

import pytest

from repro import metrics
from repro.errors import MetricsError
from repro.metrics import (Heartbeat, HeartbeatMonitor, MetricsRegistry,
                           format_progress)
from repro.metrics.export import json_record, prometheus_text


@pytest.fixture(autouse=True)
def _registry_slot_clean():
    assert metrics.active() is None
    yield
    metrics.uninstall()


# -- instruments -------------------------------------------------------------------


def test_counter_inc_and_pull_set():
    registry = MetricsRegistry()
    counter = registry.counter("dma", "maps")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.set(17)   # pull-model overwrite
    assert counter.value == 17
    with pytest.raises(MetricsError):
        counter.inc(-1)
    with pytest.raises(MetricsError):
        counter.set(-3)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("mem", "free_pages")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(12)
    assert gauge.value == 3


def test_histogram_pow2_buckets():
    hist = MetricsRegistry().histogram("spade", "parse_seconds")
    hist.observe(0.25)    # < 1 -> bucket 0
    hist.observe(1)       # [1, 2) -> bucket 1
    hist.observe(3)       # [2, 4) -> bucket 2
    hist.observe(3.5)
    hist.observe(-2)      # clamped to bucket 0
    assert hist.buckets == {0: 2, 1: 1, 2: 2}
    assert hist.count == 5
    assert hist.min == -2
    assert hist.max == 3.5
    assert hist.to_json()["buckets"] == {"0": 2, "1": 1, "2": 2}


def test_labeled_family_instruments_are_distinct():
    registry = MetricsRegistry()
    hit = registry.counter("iommu", "iotlb_lookups", result="hit")
    miss = registry.counter("iommu", "iotlb_lookups", result="miss")
    assert hit is not miss
    hit.inc(3)
    assert registry.counter("iommu", "iotlb_lookups",
                            result="hit").value == 3
    assert miss.value == 0
    assert len(registry) == 2


def test_kind_collision_raises():
    registry = MetricsRegistry()
    registry.counter("net", "rx_packets")
    with pytest.raises(MetricsError):
        registry.gauge("net", "rx_packets")


def test_unknown_subsystem_raises():
    with pytest.raises(MetricsError):
        MetricsRegistry().counter("nope", "things")


def test_collector_slots_last_wins():
    registry = MetricsRegistry()
    registry.register_collector(
        lambda r: r.gauge("sim", "boot_marker").set(1), slot="kernel")
    registry.register_collector(
        lambda r: r.gauge("sim", "boot_marker").set(2), slot="kernel")
    registry.collect()
    assert registry.gauge("sim", "boot_marker").value == 2


# -- install / session / env gate --------------------------------------------------


def test_double_install_raises():
    metrics.install()
    with pytest.raises(MetricsError):
        metrics.install()


def test_session_installs_and_uninstalls():
    with metrics.session() as registry:
        assert metrics.active() is registry
        metrics.count("campaign", "seeds", status="ok")
        assert registry.counter("campaign", "seeds",
                                status="ok").value == 1
    assert metrics.active() is None


def test_env_off_disables_layer(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "off")
    assert not metrics.enabled_in_env()
    assert metrics.install() is None
    assert metrics.active() is None
    with metrics.session() as registry:
        assert registry is None


def test_helpers_are_noops_when_inactive():
    metrics.count("dma", "maps")
    metrics.observe("spade", "analyze_seconds", 0.1)
    metrics.set_gauge("mem", "free_pages", 9)
    assert metrics.active() is None


# -- exporters ---------------------------------------------------------------------


def _toy_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("dma", "maps").set(7)
    registry.counter("iommu", "iotlb_lookups", result="hit").set(5)
    registry.counter("iommu", "iotlb_lookups", result="miss").set(2)
    registry.gauge("mem", "free_pages").set(1.5)
    hist = registry.histogram("spade", "analyze_seconds")
    hist.observe(0.5)
    hist.observe(3)
    return registry


def test_prometheus_text_shape():
    text = prometheus_text(_toy_registry())
    lines = text.splitlines()
    assert "# TYPE repro_dma_maps_total counter" in lines
    assert "repro_dma_maps_total 7" in lines
    # one TYPE line per family, label values sorted and quoted
    assert lines.count(
        "# TYPE repro_iommu_iotlb_lookups_total counter") == 1
    assert 'repro_iommu_iotlb_lookups_total{result="hit"} 5' in lines
    assert 'repro_iommu_iotlb_lookups_total{result="miss"} 2' in lines
    assert "repro_mem_free_pages 1.5" in lines
    # cumulative histogram buckets up to +Inf
    assert 'repro_spade_analyze_seconds_bucket{le="1"} 1' in lines
    assert 'repro_spade_analyze_seconds_bucket{le="2"} 1' in lines
    assert 'repro_spade_analyze_seconds_bucket{le="4"} 2' in lines
    assert 'repro_spade_analyze_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_spade_analyze_seconds_sum 3.5" in lines
    assert "repro_spade_analyze_seconds_count 2" in lines
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("net", "rx_packets", device='e"t\\h\n0').set(1)
    text = prometheus_text(registry)
    assert r'device="e\"t\\h\n0"' in text


def test_json_record_roundtrips():
    doc = json_record(_toy_registry(), seed=9)
    assert doc["schema"] == "repro.metrics/1"
    assert doc["seed"] == 9
    json.loads(json.dumps(doc))  # fully serializable
    by_name = {(m["subsystem"], m["name"], tuple(sorted(
        m["labels"].items()))): m for m in doc["metrics"]}
    assert by_name[("dma", "maps", ())]["value"] == 7
    hist = by_name[("spade", "analyze_seconds", ())]["histogram"]
    assert hist["count"] == 2


def test_samples_are_sorted_subsystem_then_name():
    samples = _toy_registry().samples()
    order = [(s.subsystem, s.name) for s in samples]
    assert order == [("dma", "maps"),
                     ("iommu", "iotlb_lookups"),
                     ("iommu", "iotlb_lookups"),
                     ("mem", "free_pages"),
                     ("spade", "analyze_seconds")]


# -- heartbeats --------------------------------------------------------------------


def test_heartbeat_roundtrip(tmp_path):
    hb = Heartbeat(str(tmp_path), "w7")
    hb.beat(stage="running", seed=13, seeds_done=2, attempt=1)
    (health,) = HeartbeatMonitor(str(tmp_path)).scan()
    assert health.worker_id == "w7"
    assert health.stage == "running"
    assert health.seed == 13
    assert health.seeds_done == 2
    assert health.extra == {"attempt": 1}
    assert not health.stalled


def test_monitor_flags_stalled_running_worker(tmp_path):
    Heartbeat(str(tmp_path), "w1").beat(stage="running", seed=9)
    Heartbeat(str(tmp_path), "w2").beat(stage="idle", seeds_done=3)
    monitor = HeartbeatMonitor(str(tmp_path), stall_after_s=5.0)
    healths = monitor.scan(now=time.time() + 60)
    by_id = {h.worker_id: h for h in healths}
    assert by_id["w1"].stalled              # silent while running
    assert not by_id["w2"].stalled          # idle workers never stall
    line = format_progress(healths)
    assert "1 STALLED" in line
    assert "seed 9" in line
    assert "3 seeds done" in line


def test_monitor_skips_torn_files(tmp_path):
    Heartbeat(str(tmp_path), "ok").beat(stage="idle")
    (tmp_path / "worker-torn.json").write_text("{not json")
    healths = HeartbeatMonitor(str(tmp_path)).scan()
    assert [h.worker_id for h in healths] == ["ok"]


def test_monitor_clear_and_empty_progress(tmp_path):
    hb = Heartbeat(str(tmp_path), "w1")
    hb.beat()
    monitor = HeartbeatMonitor(str(tmp_path))
    monitor.clear()
    assert monitor.scan() == []
    assert format_progress([]) == "workers: none reporting"
