"""Metrics across the stack: trace cross-checks, campaign telemetry,
deterministic exports, and the ``repro-dma metrics`` CLI."""

import json
import time

import pytest

from repro import metrics, perfcache, trace
from repro.cli import main
from repro.core.dkasan import DKasan
from repro.sim.kernel import Kernel
from repro.trace import event_counts


@pytest.fixture(autouse=True)
def _slots_clean():
    assert metrics.active() is None
    assert trace.active() is None
    yield
    metrics.uninstall()
    trace.uninstall()
    perfcache.reset_default()


def _value(samples, subsystem, name, **labels):
    for sample in samples:
        if (sample.subsystem == subsystem and sample.name == name
                and sample.labels == labels):
            return sample.value
    raise AssertionError(f"no sample {subsystem}/{name} {labels}")


# -- metrics counters must agree with trace event counts --------------------------


@pytest.fixture(scope="module")
def ringflood_observed():
    """One traced + metered ringflood, shared by the cross-checks."""
    from repro.core.attacks.ringflood import (make_attacker,
                                              profile_replica_boots,
                                              run_ringflood)

    # replicas boot before the sessions open: their events and counters
    # must not pollute the victim's numbers
    profile = profile_replica_boots(3, seed=23, nr_slots=8)
    with trace.session(categories=("iommu", "dkasan")) as recorder:
        with metrics.session() as registry:
            dkasan = DKasan(512 << 20)
            victim = Kernel(seed=23, boot_index=5, phys_mb=512,
                            sink=dkasan)
            nic = victim.add_nic("eth0")
            device = make_attacker(victim, "eth0")
            run_ringflood(victim, nic, device, profile, nr_slots=8)
            samples = registry.samples()
    return samples, recorder, dkasan


def test_ringflood_stale_hits_match_trace(ringflood_observed):
    samples, recorder, _dkasan = ringflood_observed
    assert recorder.dropped == 0
    counts = event_counts(recorder.events)
    stale = _value(samples, "iommu", "iotlb_stale_hits")
    assert stale > 0                      # the attack's core mechanism
    assert stale == counts[("iommu", "stale_hit")]


def test_ringflood_dkasan_metrics_match_report(ringflood_observed):
    samples, _recorder, dkasan = ringflood_observed
    from repro.core.dkasan.sanitizer import EVENT_KINDS

    report = dkasan.summary_counts()
    assert sum(report.values()) > 0
    for kind in EVENT_KINDS:
        assert _value(samples, "dkasan", "events",
                      kind=kind) == report.get(kind, 0)
    assert _value(samples, "dkasan", "events_all") == len(dkasan.events)


def test_metrics_counters_survive_trace_ring_drops():
    """The ring drops the oldest events under pressure; the registry's
    pulled counters never lose counts."""
    from repro.sim.workload import run_compile_and_ping

    with trace.session(capacity=32) as recorder:
        with metrics.session() as registry:
            kernel = Kernel(seed=7, phys_mb=256, boot_jitter_pages=0,
                            boot_jitter_blocks=0)
            nic = kernel.add_nic("eth0")
            run_compile_and_ping(kernel, nic, rounds=5)
            samples = registry.samples()
    assert recorder.dropped > 0
    on_ring_maps = event_counts(recorder.events)[("dma", "map")]
    maps = _value(samples, "dma", "maps")
    # the off-ring trace counter and the pulled metric agree...
    assert maps == recorder.counters[("dma", "maps")]
    # ...and both exceed what survived in the bounded ring
    assert maps > on_ring_maps


def test_last_boot_owns_the_kernel_collector_slot():
    with metrics.session() as registry:
        Kernel(seed=3, phys_mb=256, boot_jitter_pages=0,
               boot_jitter_blocks=0)
        second = Kernel(seed=4, phys_mb=256, boot_jitter_pages=1,
                        boot_jitter_blocks=0)
        second.add_nic("eth0")
        samples = registry.samples()
    # the NIC exists only on the second boot: its collector won
    assert _value(samples, "net", "rx_packets", device="eth0") == 0
    assert _value(samples, "mem", "phys_bytes") == \
        second.phys.size_bytes


# -- campaign heartbeat telemetry --------------------------------------------------


def test_campaign_reports_heartbeat_progress(tmp_path):
    from repro.campaign import CampaignConfig, run_campaign

    config = CampaignConfig(nr_seeds=2, jobs=1, scale=0.05,
                            mutations_per_seed=2, trace_events=0,
                            output=str(tmp_path / "results.jsonl"),
                            heartbeat_dir=str(tmp_path / "hb"))
    snapshots = []
    summary = run_campaign(config, heartbeat=snapshots.append)
    assert summary.nr_seeds == 2
    assert snapshots, "heartbeat callback never fired"
    final = {h.worker_id: h for h in snapshots[-1]}
    assert final["main"].seeds_done == 2
    assert not any(h.stalled for h in snapshots[-1])


def test_long_batch_heartbeats_per_seed_in_one_worker(tmp_path):
    """A 1-worker run whose whole seed range lands in one batch still
    beats per seed, so a long healthy batch never reads as a stall."""
    from repro.campaign.runner import _init_worker, _worker_batch
    from repro.metrics.heartbeat import HeartbeatMonitor

    from repro.campaign import CampaignConfig

    hb_dir = str(tmp_path / "hb")
    config = CampaignConfig(nr_seeds=4, jobs=1, scale=0.05,
                            mutations_per_seed=2, trace_events=0,
                            output=None, heartbeat_dir=hb_dir)
    seen = []

    class SpyHeartbeat:
        worker_id = "spy"

        def beat(self, **fields):
            seen.append(fields)

    import repro.campaign.runner as runner_module
    _init_worker(config)
    runner_module._WORKER_HEARTBEAT = SpyHeartbeat()
    records = _worker_batch([1, 2, 3, 4], [0, 0, 0, 0])
    assert [r["seed"] for r in records] == [1, 2, 3, 4]
    running = [f for f in seen if f.get("stage") == "running"]
    # one fresh beat per seed *within* the batch, carrying its
    # position so --retry-stalled sees steady progress
    assert [f["seed"] for f in running] == [1, 2, 3, 4]
    assert [f["batch_position"] for f in running] == [0, 1, 2, 3]
    assert all(f["batch_size"] == 4 for f in running)
    assert seen[-1]["stage"] == "idle"
    assert seen[-1]["seeds_done"] == 4
    # and the real heartbeat file from _init_worker is fresh, so the
    # monitor reports a healthy worker
    monitor = HeartbeatMonitor(hb_dir, stall_after_s=60.0)
    assert not any(h.stalled for h in monitor.scan())


def test_campaign_flags_stalled_worker(tmp_path):
    """A worker mid-seed that goes silent past the threshold is
    flagged on the progress line."""
    from repro.metrics.heartbeat import Heartbeat, HeartbeatMonitor

    hb_dir = str(tmp_path / "hb")
    Heartbeat(hb_dir, "4242").beat(stage="running", seed=17)
    monitor = HeartbeatMonitor(hb_dir, stall_after_s=10.0)
    healths = monitor.scan(now=time.time() + 120)
    assert [h.stalled for h in healths] == [True]
    line = metrics.format_progress(healths)
    assert "STALLED" in line
    assert "seed 17" in line


def test_cli_campaign_prints_progress_line(tmp_path, capsys):
    code = main(["campaign", "--seeds", "2", "--jobs", "1",
                 "--scale", "0.05", "--mutations", "2",
                 "--trace-events", "0",
                 "--output", str(tmp_path / "results.jsonl"),
                 "--cache-dir", "",
                 "--heartbeat-dir", str(tmp_path / "hb")])
    out = capsys.readouterr().out
    assert code in (0, 1)   # disagreements are a result, not a failure
    assert "workers:" in out
    assert "seeds done" in out


# -- deterministic exports ---------------------------------------------------------


def _export_compile_ping(seed: int) -> tuple[str, str]:
    from repro.sim.workload import run_compile_and_ping

    perfcache.reset_default()
    with metrics.session() as registry:
        dkasan = DKasan(256 << 20)
        kernel = Kernel(seed=seed, phys_mb=256, sink=dkasan)
        nic = kernel.add_nic("eth0")
        run_compile_and_ping(kernel, nic, rounds=5)
        text = metrics.prometheus_text(registry)
        doc = json.dumps(metrics.json_record(registry, seed=seed),
                         sort_keys=True)
    return text, doc


def test_same_seed_exports_are_byte_identical(monkeypatch):
    first = _export_compile_ping(9)
    second = _export_compile_ping(9)
    assert first == second
    # the perfcache family is zero-filled either way, so disabling the
    # cache must not change a workload export by a single byte
    monkeypatch.setenv("REPRO_CACHE", "off")
    third = _export_compile_ping(9)
    assert third == first


def test_different_seed_exports_differ():
    assert _export_compile_ping(9) != _export_compile_ping(10)


def test_export_covers_at_least_six_subsystems():
    from repro.sim.workload import run_compile_and_ping

    with metrics.session() as registry:
        dkasan = DKasan(256 << 20)
        kernel = Kernel(seed=5, phys_mb=256, sink=dkasan)
        nic = kernel.add_nic("eth0")
        run_compile_and_ping(kernel, nic, rounds=3)
        present = registry.subsystems_present()
    assert len(present) >= 6
    assert {"dma", "iommu", "net", "mem", "dkasan",
            "perfcache"} <= set(present)


# -- perfcache counters ------------------------------------------------------------


def test_perfcache_corruption_recovery_reaches_registry(tmp_path):
    cache = perfcache.configure(str(tmp_path / "cache"))
    cache.cached("findings", "k" * 64, lambda: [1, 2],
                 encode=lambda o: o, decode=lambda p: p)
    # corrupt the entry on disk, then force a disk read
    path = cache._entry_path("findings", "k" * 64)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{torn")
    cache.drop_memory()
    assert cache.cached("findings", "k" * 64, lambda: [1, 2],
                        encode=lambda o: o,
                        decode=lambda p: p) == [1, 2]
    assert cache.stats.corrupt == 1
    with metrics.session() as registry:
        samples = registry.samples()
    assert _value(samples, "perfcache", "corrupt_recovered") == 1
    hit_ratio = _value(samples, "perfcache", "hit_ratio")
    assert 0.0 <= hit_ratio <= 1.0


def test_persisted_stats_aggregate_across_processes(tmp_path):
    directory = str(tmp_path / "cache")
    a = perfcache.PerfCache(directory)
    a.cached("parse", "a" * 64, lambda: 1,
             encode=lambda o: o, decode=lambda p: p)
    assert a.persist_stats()
    b = perfcache.PerfCache(directory)
    b.cached("parse", "a" * 64, lambda: 1,
             encode=lambda o: o, decode=lambda p: p)   # disk hit
    b._stats_name = "STATS-99999-beef.json"            # second "process"
    assert b.persist_stats()
    total = perfcache.PerfCache(directory).aggregate_persisted_stats()
    assert total.misses == 1
    assert total.disk_hits == 1
    assert total.stores == 1


# -- the metrics CLI ---------------------------------------------------------------


def test_cli_metrics_prometheus_deterministic(tmp_path, capsys):
    out_a = tmp_path / "a.prom"
    out_b = tmp_path / "b.prom"
    assert main(["metrics", "--workload", "compile-ping", "--rounds",
                 "3", "--output", str(out_a)]) == 0
    assert main(["metrics", "--workload", "compile-ping", "--rounds",
                 "3", "--output", str(out_b)]) == 0
    text = out_a.read_text()
    assert text == out_b.read_text()
    assert "repro_iommu_iotlb_lookups_total" in text
    assert "repro_dkasan_events_total" in text
    stdout = capsys.readouterr().out
    assert "subsystems" in stdout


def test_cli_metrics_proc_format(capsys):
    assert main(["metrics", "--workload", "compile-ping",
                 "--rounds", "2", "--format", "proc"]) == 0
    out = capsys.readouterr().out
    for block in ("meminfo:", "iommu_stats:", "netdev:",
                  "dkasan_stats:"):
        assert block in out
    assert "MemTotal:" in out


def test_cli_metrics_json_format(capsys):
    assert main(["metrics", "--workload", "storage",
                 "--commands", "8", "--format", "json"]) == 0
    out = capsys.readouterr().out
    payload = out[out.index("{"):]
    doc = json.loads(payload[:payload.rindex("}") + 1])
    assert doc["schema"] == "repro.metrics/1"
    assert doc["seed"] == 5


def test_cli_metrics_respects_env_off(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_METRICS", "off")
    assert main(["metrics", "--workload", "compile-ping",
                 "--rounds", "1"]) == 2
    assert "REPRO_METRICS=off" in capsys.readouterr().err
