"""Coverage for smaller behaviours not exercised elsewhere."""

import pytest

from repro.errors import NetStackError
from repro.net.proto import (HEADER_LEN, PROTO_TCP, PROTO_UDP,
                             decode_header, encode_packet, make_packet,
                             PacketHeader)
from repro.sim.kernel import Kernel


# -- wire protocol ---------------------------------------------------------------

def test_encode_decode_roundtrip():
    header = PacketHeader(0x0A00_0001, 0x0B00_0002, PROTO_TCP, 1,
                          0x1234, 5, 443)
    wire = encode_packet(header, b"hello")
    assert decode_header(wire) == header
    assert wire[HEADER_LEN:] == b"hello"


def test_encode_length_mismatch_rejected():
    header = PacketHeader(1, 2, PROTO_UDP, 0, 0, 99, 0)
    with pytest.raises(NetStackError):
        encode_packet(header, b"short")


def test_decode_short_packet_rejected():
    with pytest.raises(NetStackError):
        decode_header(b"tiny")


def test_make_packet_defaults():
    header = decode_header(make_packet(dst_ip=7, payload=b"xy"))
    assert header.dst_ip == 7
    assert header.proto == PROTO_TCP
    assert header.payload_len == 2


# -- GRO flush_all / LRO RX path ------------------------------------------------------

def test_gro_flush_all_drains_pending():
    kernel = Kernel(seed=7, phys_mb=256, forwarding=True)
    nic = kernel.add_nic("eth0")
    for flow in (61, 62):
        nic.device_receive(make_packet(dst_ip=0x0B00_0001,
                                       proto=PROTO_TCP, flow_id=flow,
                                       dst_port=80, payload=b"x" * 64))
        nic.napi_poll()
    assert kernel.stack.rx_backlog == []
    kernel.gro.flush_all(nic)
    assert len(kernel.stack.rx_backlog) == 2
    kernel.stack.process_backlog()


def test_lro_rx_end_to_end():
    kernel = Kernel(seed=7, phys_mb=512)
    nic = kernel.add_nic("eth0", hw_lro=True, rx_ring_size=8)
    big = make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP, dst_port=7,
                      payload=b"J" * 30_000)
    assert nic.device_receive(big)
    kernel.poll_and_process()
    [(desc, wire)] = nic.device_fetch_tx()
    assert wire[HEADER_LEN:] == b"J" * 30_000
    nic.tx_clean()
    assert kernel.stack.stats.oopses == 0


def test_oversized_packet_rejected(kernel):
    nic = kernel.nics["eth0"]
    too_big = make_packet(dst_ip=1, proto=PROTO_UDP,
                          payload=b"x" * 4000)
    with pytest.raises(NetStackError):
        nic.device_receive(too_big)


def test_rx_ring_starvation_returns_false():
    kernel = Kernel(seed=7, phys_mb=256)
    nic = kernel.add_nic("eth1", rx_ring_size=4)
    sent = 0
    while nic.device_receive(make_packet(dst_ip=1, proto=PROTO_UDP,
                                         payload=b"x")):
        sent += 1
        assert sent < 10
    assert sent == 3  # ring keeps one slot unposted


# -- finding trace rendering -----------------------------------------------------------

def test_trace_rendering_for_clean_finding():
    from repro.core.spade.findings import Finding
    from repro.core.spade.report import format_finding_trace
    finding = Finding("drivers/x/x.c", 10, "buf")
    finding.note("step one")
    text = format_finding_trace(finding)
    assert "no static exposure found" in text
    assert "[1] step one" in text


# -- vuln classification on multi-page mappings ------------------------------------------

def test_classify_multipage_mapping(bare_kernel):
    from repro.core.vulns import classify_page_exposures
    k = bare_kernel
    k.iommu.attach_device("dev0")
    big = k.slab.kmalloc(8192)
    k.dma.dma_map_single("dev0", big, 8192, "DMA_TO_DEVICE")
    first_pfn = k.addr_space.pfn_of_kva(big)
    for pfn in (first_pfn, first_pfn + 1):
        # single mapping, no bystanders: nothing to report
        assert classify_page_exposures(pfn, k.dma.registry,
                                       k.slab) == []


# -- iotlb stats through the kernel -----------------------------------------------------

def test_iotlb_hit_rate_accumulates(kernel):
    nic = kernel.nics["eth0"]
    for i in range(4):
        nic.device_receive(make_packet(dst_ip=0x0A00_0001,
                                       proto=PROTO_UDP, dst_port=9999,
                                       flow_id=i, payload=b"y" * 900))
        kernel.poll_and_process()
    stats = kernel.iommu.iotlb.stats
    assert stats.misses > 0
    assert stats.invalidations == 0  # deferred mode defers everything


# -- executor call log ------------------------------------------------------------------

def test_executor_call_log_accumulates(kernel):
    kernel.executor.invoke_callback(kernel.symbol_address("kfree_skb"))
    kernel.executor.invoke_callback(
        kernel.symbol_address("tcp_write_space"))
    assert kernel.executor.call_log == ["kfree_skb", "tcp_write_space"]


# -- corpus SourceTree errors -------------------------------------------------------------

def test_source_tree_errors():
    from repro.corpus.generate import SourceTree
    from repro.errors import CorpusError
    tree = SourceTree()
    tree.add("a.c", "int x;")
    with pytest.raises(CorpusError):
        tree.add("a.c", "again")
    with pytest.raises(CorpusError):
        tree.read("missing.c")
    assert tree.paths(suffix=".c") == ["a.c"]
