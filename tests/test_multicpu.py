"""Multi-CPU behaviour: per-CPU rings, cross-CPU attack runs."""

from repro.core.attacks.poisoned_tx import run_poisoned_tx
from repro.core.attacks.ringflood import make_attacker
from repro.net.proto import PROTO_UDP, make_packet
from repro.sim.kernel import Kernel


def test_each_cpu_has_its_own_ring_and_chunk():
    """"each CPU has a single RX ring ... each RX ring is served by its
    own (per-CPU) contiguous buffer" (Figure 5)."""
    kernel = Kernel(seed=7, phys_mb=512, nr_cpus=4)
    nic = kernel.add_nic("eth0")
    first_buffer_pfns = set()
    for cpu in range(4):
        desc = nic.rx_rings[cpu].posted_descriptors()[0]
        first_buffer_pfns.add(kernel.addr_space.pfn_of_kva(desc.kva))
    assert len(first_buffer_pfns) == 4


def test_rx_on_secondary_cpu():
    kernel = Kernel(seed=7, phys_mb=512, nr_cpus=4)
    nic = kernel.add_nic("eth0")
    packet = make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                         dst_port=7, payload=b"cpu2")
    assert nic.device_receive(packet, cpu=2)
    nic.napi_poll(cpu=2)
    kernel.stack.process_backlog()
    assert kernel.stack.stats.echoed == 1
    nic.device_fetch_tx(cpu=2)
    nic.tx_clean(cpu=2)


def test_poisoned_tx_on_secondary_cpu():
    """The compound attack works against any CPU's rings."""
    victim = Kernel(seed=23, boot_index=6, phys_mb=512, nr_cpus=4)
    nic = victim.add_nic("eth0")
    device = make_attacker(victim, "eth0")
    report = run_poisoned_tx(victim, nic, device, cpu=3)
    assert report.escalated
    assert victim.stack.stats.oopses == 0


def test_cross_cpu_traffic_does_not_interfere():
    kernel = Kernel(seed=7, phys_mb=512, nr_cpus=2)
    nic = kernel.add_nic("eth0")
    for cpu in (0, 1):
        for i in range(3):
            nic.device_receive(
                make_packet(dst_ip=0x0A00_0001, proto=PROTO_UDP,
                            dst_port=7, flow_id=cpu * 10 + i,
                            payload=b"x" * 32), cpu=cpu)
    kernel.poll_and_process()
    assert kernel.stack.stats.echoed == 6
    for cpu in (0, 1):
        nic.device_fetch_tx(cpu=cpu)
        nic.tx_clean(cpu=cpu)
    assert kernel.stack.stats.oopses == 0
