"""net.structs: layouts match the exploited geometry."""

import pytest

from repro.errors import NetStackError
from repro.mem.phys import PhysicalMemory
from repro.net.structs import (MAX_SKB_FRAGS, SKB_SHARED_INFO, UBUF_INFO,
                               Field, StructLayout, skb_data_align,
                               skb_shared_info_offset, skb_truesize)


def test_destructor_arg_is_a_callback_field():
    field = SKB_SHARED_INFO.field("destructor_arg")
    assert field.is_callback
    assert field.offset == 40
    assert field.size == 8


def test_frags_layout():
    assert SKB_SHARED_INFO.field("frags[0].page").offset == 48
    assert SKB_SHARED_INFO.field("frags[1].page").offset == 64
    assert SKB_SHARED_INFO.field("frags[16].size").offset == \
        48 + 16 * 16 + 12
    assert SKB_SHARED_INFO.size == 48 + MAX_SKB_FRAGS * 16


def test_ubuf_info_callback_first():
    """ubuf_info.callback is the first qword: exactly what the hijack
    overwrites (Figure 4)."""
    assert UBUF_INFO.field("callback").offset == 0
    assert UBUF_INFO.field("callback").is_callback
    assert UBUF_INFO.size == 32


def test_unknown_field_rejected():
    with pytest.raises(NetStackError):
        SKB_SHARED_INFO.field("no_such_field")


def test_field_overflow_rejected():
    with pytest.raises(NetStackError):
        StructLayout("bad", [Field("x", 8, 8)], size=12)


def test_skb_data_align_cacheline():
    assert skb_data_align(1) == 64
    assert skb_data_align(64) == 64
    assert skb_data_align(65) == 128
    assert skb_data_align(1500) == 1536


def test_shared_info_offset_and_truesize():
    assert skb_shared_info_offset(1536) == 1536
    assert skb_truesize(1536) == 1536 + skb_data_align(
        SKB_SHARED_INFO.size)


def test_bound_struct_reads_and_writes_memory():
    phys = PhysicalMemory(4)
    bound = SKB_SHARED_INFO.bind(phys, 0x100)
    bound.zero()
    bound.write("nr_frags", 3)
    bound.write("destructor_arg", 0xFFFF_8880_0000_1234)
    assert bound.read("nr_frags") == 3
    assert phys.read_u8(0x100 + 2) == 3
    assert phys.read_u64(0x100 + 40) == 0xFFFF_8880_0000_1234


def test_bound_struct_field_paddr():
    phys = PhysicalMemory(4)
    bound = UBUF_INFO.bind(phys, 0x200)
    assert bound.field_paddr("desc") == 0x210


def test_callback_fields_listing():
    names = [f.name for f in SKB_SHARED_INFO.callback_fields()]
    assert names == ["destructor_arg"]
