"""NIC + stack integration: RX, echo, TX, forwarding, release paths."""

import pytest

from repro.errors import NetStackError
from repro.net.nic import LRO_RX_BUF_SIZE
from repro.net.proto import (HEADER_LEN, PROTO_TCP, PROTO_UDP,
                             decode_header, make_packet)
from repro.net.stack import ECHO_PORT
from repro.net.structs import skb_truesize
from repro.sim.kernel import Kernel


def udp(dst_port=ECHO_PORT, payload=b"ping", flow=1, dst=0x0A00_0001):
    return make_packet(dst_ip=dst, proto=PROTO_UDP, dst_port=dst_port,
                       flow_id=flow, payload=payload)


def test_rx_to_echo_to_tx(kernel):
    nic = kernel.nics["eth0"]
    assert nic.device_receive(udp(payload=b"hello"))
    kernel.poll_and_process()
    fetched = nic.device_fetch_tx()
    assert len(fetched) == 1
    _desc, wire = fetched[0]
    assert wire[HEADER_LEN:] == b"hello"
    assert nic.tx_clean() == 1
    assert kernel.stack.stats.echoed == 1
    assert kernel.stack.stats.skbs_freed == 2


def test_rx_payload_travels_through_memory(kernel):
    """The bytes the device wrote are what the stack parses."""
    nic = kernel.nics["eth0"]
    packet = udp(dst_port=4000, payload=b"ABCDEFG")
    nic.device_receive(packet)
    skbs = nic.napi_poll()
    assert len(skbs) == 1
    header = decode_header(skbs[0].data())
    assert header.dst_port == 4000
    assert skbs[0].data()[HEADER_LEN:] == b"ABCDEFG"
    kernel.stack.process_backlog()


def test_non_local_dropped_without_forwarding(kernel):
    nic = kernel.nics["eth0"]
    nic.device_receive(udp(dst=0x0B00_0001, dst_port=80))
    kernel.poll_and_process()
    assert kernel.stack.stats.dropped == 1


def test_forwarding_retransmits():
    k = Kernel(seed=7, phys_mb=256, forwarding=True)
    nic = k.add_nic("eth0")
    nic.device_receive(udp(dst=0x0B00_0001, dst_port=80, payload=b"fw"))
    k.poll_and_process()
    assert k.stack.stats.forwarded == 1
    fetched = nic.device_fetch_tx()
    assert fetched and fetched[0][1][HEADER_LEN:] == b"fw"
    nic.tx_clean()
    assert k.stack.stats.oopses == 0


def test_rx_refill_keeps_ring_posted(kernel):
    nic = kernel.nics["eth0"]
    ring = nic.rx_rings[0]
    posted_before = len(ring.posted_descriptors())
    for i in range(5):
        nic.device_receive(udp(dst_port=4000 + i))
    nic.napi_poll()
    kernel.stack.process_backlog()
    assert len(ring.posted_descriptors()) == posted_before


def test_large_echo_uses_frags(kernel):
    nic = kernel.nics["eth0"]
    nic.device_receive(udp(payload=b"Z" * 800))
    kernel.poll_and_process()
    fetched = nic.device_fetch_tx()
    desc, wire = fetched[0]
    assert desc.frag_iovas, "large echo should carry page frags"
    assert wire[HEADER_LEN:] == b"Z" * 800
    nic.tx_clean()
    assert kernel.stack.stats.oopses == 0


def test_zerocopy_send_invokes_callback(kernel):
    nic = kernel.nics["eth0"]
    kernel.stack.send(b"q" * 300, dst_ip=0x0B00_0001, nic=nic,
                      zerocopy=True)
    nic.device_fetch_tx()
    nic.tx_clean()
    assert kernel.stack.stats.zerocopy_callbacks == 1
    assert "sock_def_write_space" in kernel.executor.call_log


def test_zerocopy_threshold_config():
    k = Kernel(seed=7, phys_mb=256, zerocopy_threshold=256)
    nic = k.add_nic("eth0")
    k.stack.send(b"small", dst_ip=0x0B00_0001, nic=nic)
    k.stack.send(b"L" * 300, dst_ip=0x0B00_0001, nic=nic)
    nic.device_fetch_tx()
    nic.tx_clean()
    assert k.stack.stats.zerocopy_callbacks == 1


def test_double_free_detected(kernel):
    skb = kernel.skb_alloc.alloc_skb(128)
    kernel.stack.kfree_skb(skb)
    with pytest.raises(NetStackError):
        kernel.stack.kfree_skb(skb)


def test_unaccounted_frags_oops(kernel):
    """Freeing an skb whose frags nobody owns models the bad-page-state
    crash the surveillance attack must avoid (section 5.5)."""
    skb = kernel.skb_alloc.alloc_skb(128)
    skb.add_frag(50, 0, 64)
    kernel.stack.kfree_skb(skb)
    assert kernel.stack.stats.oopses == 1


def test_buggy_unmap_order_fires_race_hook():
    k = Kernel(seed=7, phys_mb=256)
    nic = k.add_nic("eth1", unmap_order="skb_first")
    seen = []
    nic.rx_race_hook = lambda skb, desc: seen.append(
        k.iommu.device_can_access("eth1", desc.iova, write=True))
    nic.device_receive(udp(dst_port=4000))
    nic.napi_poll()
    k.stack.process_backlog()
    # Path (i): during the race window the ORIGINAL mapping is live.
    assert seen == [True]


def test_correct_order_has_no_hook():
    k = Kernel(seed=7, phys_mb=256)
    nic = k.add_nic("eth1", unmap_order="unmap_first")
    seen = []
    nic.rx_race_hook = lambda skb, desc: seen.append(True)
    nic.device_receive(udp(dst_port=4000))
    nic.napi_poll()
    k.stack.process_backlog()
    assert seen == []


def test_bad_unmap_order_rejected(kernel):
    with pytest.raises(NetStackError):
        kernel.add_nic("bad", unmap_order="whenever")


def test_lro_uses_page_allocations():
    k = Kernel(seed=7, phys_mb=512)
    nic = k.add_nic("eth0", hw_lro=True, rx_ring_size=8)
    desc = nic.rx_rings[0].posted_descriptors()[0]
    assert desc.buf_size == LRO_RX_BUF_SIZE
    assert desc.alloc_method == "pages"
    assert skb_truesize(desc.buf_size) > 32768


def test_tx_timeout_watchdog():
    k = Kernel(seed=7, phys_mb=256)
    nic = k.add_nic("eth0")
    k.stack.send(b"stuck", dst_ip=0x0B00_0001, nic=nic)
    nic.device_fetch_tx(complete=False)  # device withholds completion
    k.advance_time_us(6_000_000)
    assert nic.check_tx_timeout()
    assert nic.stats.tx_timeouts == 1
    nic.tx_clean()


def test_socket_carries_init_net_pointer(kernel):
    """The KASLR leak source: sockets point at init_net (section 2.4)."""
    sock = kernel.stack.sockets[0]
    paddr = kernel.addr_space.paddr_of_kva(sock.kva)
    stored = kernel.phys.read_u64(paddr + 0x30)
    assert stored == kernel.init_net_address()


def test_sock_shares_slab_page_with_tx_buffers(kernel):
    """Socket objects and small TX linear buffers share kmalloc-1024
    pages -- the co-location the TX leak harvesting rides on."""
    nic = kernel.nics["eth0"]
    skb = kernel.stack.send(b"x", dst_ip=0x0B00_0001, nic=nic)
    sock = kernel.stack.sockets[0]
    sock_pfn = kernel.addr_space.pfn_of_kva(sock.kva)
    data_pfn = kernel.addr_space.pfn_of_kva(skb.head_kva)
    assert sock_pfn == data_pfn
    nic.device_fetch_tx()
    nic.tx_clean()
