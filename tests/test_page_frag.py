"""PageFragAllocator: Figure 5's descending-offset allocation."""

import pytest

from repro.errors import AllocatorError
from repro.mem.buddy import BuddyAllocator
from repro.mem.page_frag import PageFragAllocator, PageFragCache
from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.mem.virt import IdentityTranslator


def make_cache(chunk_order=3):
    phys = PhysicalMemory(4096)
    buddy = BuddyAllocator(phys, reserved_low_pages=16)
    return buddy, PageFragCache(buddy, IdentityTranslator(),
                                chunk_order=chunk_order)


def test_allocations_walk_down_from_chunk_end():
    """"An allocation request for B bytes subtracts B bytes from the
    offset pointer" (Figure 5)."""
    _buddy, cache = make_cache()
    first = cache.alloc(1000)
    second = cache.alloc(1000)
    assert second == first - 1024  # aligned to 64
    assert (first + 1024) % cache.chunk_size == 0  # first sits at the end


def test_consecutive_buffers_share_pages():
    """The type (c) enabler: sub-page buffers co-reside on pages."""
    _buddy, cache = make_cache()
    a = cache.alloc(1856)
    b = cache.alloc(1856)
    pages_a = {a // PAGE_SIZE, (a + 1855) // PAGE_SIZE}
    pages_b = {b // PAGE_SIZE, (b + 1855) // PAGE_SIZE}
    assert pages_a & pages_b


def test_exhausted_chunk_triggers_refill():
    _buddy, cache = make_cache(chunk_order=0)  # 4 KiB chunks
    a = cache.alloc(3000)
    b = cache.alloc(3000)
    assert a // PAGE_SIZE != b // PAGE_SIZE


def test_oversized_rejected():
    _buddy, cache = make_cache(chunk_order=0)
    with pytest.raises(AllocatorError):
        cache.alloc(PAGE_SIZE + 1)


def test_non_positive_rejected():
    _buddy, cache = make_cache()
    with pytest.raises(AllocatorError):
        cache.alloc(0)


def test_free_unknown_rejected():
    _buddy, cache = make_cache()
    with pytest.raises(AllocatorError):
        cache.free(0x5000)


def test_chunk_freed_when_all_frags_released():
    buddy, cache = make_cache(chunk_order=0)
    before = buddy.nr_free_pages
    a = cache.alloc(2048)
    b = cache.alloc(2048)
    c = cache.alloc(2048)  # new chunk; old chunk loses its bias
    cache.free(a)
    cache.free(b)
    cache.free(c)
    # old chunk fully freed; current chunk still holds its bias
    assert buddy.nr_free_pages == before - 1


def test_per_cpu_caches_use_distinct_chunks():
    phys = PhysicalMemory(4096)
    buddy = BuddyAllocator(phys, reserved_low_pages=16, nr_cpus=2)
    allocator = PageFragAllocator(buddy, IdentityTranslator(), nr_cpus=2)
    a = allocator.alloc(512, cpu=0)
    b = allocator.alloc(512, cpu=1)
    assert abs(a - b) >= allocator.cache(0).chunk_size // 2


def test_unknown_cpu_rejected():
    phys = PhysicalMemory(1024)
    buddy = BuddyAllocator(phys, reserved_low_pages=16)
    allocator = PageFragAllocator(buddy, IdentityTranslator(), nr_cpus=1)
    with pytest.raises(AllocatorError):
        allocator.alloc(64, cpu=3)


def test_current_chunk_span():
    _buddy, cache = make_cache()
    assert cache.current_chunk_span() is None
    cache.alloc(100)
    base_pfn, nr = cache.current_chunk_span()
    assert nr == 8
