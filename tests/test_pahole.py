"""PaholeDb: layouts, direct and spoofable callback accounting."""

import pytest

from repro.core.spade.cparse import parse_file
from repro.core.spade.pahole import PaholeDb
from repro.errors import AnalysisError


def db_from(source: str) -> PaholeDb:
    return PaholeDb(parse_file("t.c", source).structs)


def test_scalar_layout_with_padding():
    db = db_from("""
struct s {
    u8 a;
    u32 b;
    u8 c;
    u64 d;
};
""")
    layout = db.layout("s")
    offsets = {f.name: f.offset for f in layout.fields}
    assert offsets == {"a": 0, "b": 4, "c": 8, "d": 16}
    assert layout.size == 24


def test_array_and_pointer_sizes():
    db = db_from("""
struct s {
    u8 buf[100];
    struct s *next;
};
""")
    layout = db.layout("s")
    assert layout.fields[0].size == 100
    assert layout.fields[1].offset == 104
    assert layout.size == 112


def test_nested_by_value():
    db = db_from("""
struct inner {
    u64 x;
    void (*cb)(void);
};
struct outer {
    u32 tag;
    struct inner in;
};
""")
    layout = db.layout("outer")
    assert layout.size == 8 + 16
    assert db.direct_callbacks("outer") == [("in.cb", 1)]


def test_function_pointer_arrays_count_length():
    db = db_from("""
struct table {
    void (*vec[12])(void);
};
""")
    assert db.direct_callback_count("table") == 12
    assert db.layout("table").size == 96


def test_spoofable_walks_pointer_graph_once():
    db = db_from("""
struct ops {
    int (*a)(void);
    int (*b)(void);
};
struct left {
    struct ops *ops;
};
struct right {
    struct ops *ops;
    struct left *back;
};
struct root {
    struct left *l;
    struct right *r;
    u8 buf[32];
};
""")
    total, visited = db.spoofable_callbacks("root")
    # ops visited once despite two pointers to it
    assert total == 2
    assert set(visited) == {"left", "right", "ops"}


def test_spoofable_excludes_root_direct():
    db = db_from("""
struct ops {
    int (*f)(void);
};
struct root {
    void (*own)(void);
    struct ops *ops;
};
""")
    assert db.direct_callback_count("root") == 1
    total, _ = db.spoofable_callbacks("root")
    assert total == 1  # only ops.f


def test_cyclic_pointer_graph_terminates():
    db = db_from("""
struct a {
    struct b *peer;
    void (*cb)(void);
};
struct b {
    struct a *peer;
};
""")
    total, visited = db.spoofable_callbacks("a")
    assert total == 0  # b has no callbacks; a's own cb is direct
    assert visited == ["b"]


def test_unknown_struct_raises():
    db = db_from("struct s { u8 x; };")
    with pytest.raises(AnalysisError):
        db.layout("ghost")


def test_recursive_by_value_rejected():
    db = db_from("""
struct s {
    struct s inner;
};
""")
    with pytest.raises(AnalysisError):
        db.layout("s")


def test_nvme_fc_reaches_exactly_931(corpus):
    """The Figure 2 headline number."""
    from repro.core.spade.cindex import CodeIndex
    tree, _ = corpus
    index = CodeIndex(tree)
    db = PaholeDb(index.structs)
    assert db.direct_callback_count("nvme_fc_fcp_op") == 1
    assert db.direct_callbacks("nvme_fc_fcp_op") == [("fcp_req.done", 1)]
    total, _visited = db.spoofable_callbacks("nvme_fc_fcp_op")
    assert total == 931


def test_skb_shared_info_header_layout(corpus):
    """The parsed header reproduces the runtime layout's offsets."""
    from repro.core.spade.cindex import CodeIndex
    tree, _ = corpus
    db = PaholeDb(CodeIndex(tree).structs)
    layout = db.layout("skb_shared_info")
    offsets = {f.name: f.offset for f in layout.fields}
    assert offsets["nr_frags"] == 2
    assert offsets["tx_flags"] == 3
    assert offsets["destructor_arg"] == 40
    assert offsets["frags"] == 48
