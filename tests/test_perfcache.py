"""repro.perfcache: store semantics, codecs, and SPADE cache wiring."""

import json
import os

import pytest

from repro import perfcache
from repro.core.spade import analyzer as analyzer_mod
from repro.core.spade import cindex as cindex_mod
from repro.core.spade.analyzer import Spade
from repro.core.spade.cparse import TypeRef, parse_file
from repro.core.spade.pahole import PaholeDb
from repro.corpus.generate import CorpusGenerator
from repro.corpus.linux50 import scaled_composition
from repro.perfcache import PerfCache, content_key, file_digest
from repro.perfcache.codec import decode_parsed_file, encode_parsed_file


@pytest.fixture(autouse=True)
def _fresh_default_cache(monkeypatch):
    """Isolate every test from the process-wide default and the env."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    perfcache.reset_default()
    yield
    perfcache.reset_default()


def small_tree():
    tree, _manifest = CorpusGenerator(
        seed=2021, composition=scaled_composition(0.05)).generate()
    return tree


# -- the store ---------------------------------------------------------------


def test_content_key_is_order_sensitive_and_stable():
    assert content_key("a", "b") == content_key("a", "b")
    assert content_key("a", "b") != content_key("b", "a")
    assert content_key("ab") != content_key("a", "b")


def test_memory_tier_hits_and_returns_same_object():
    cache = PerfCache()
    calls = []
    value = cache.cached("parse", "k", lambda: calls.append(1) or [1])
    again = cache.cached("parse", "k", lambda: calls.append(1) or [2])
    assert again is value
    assert calls == [1]
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1


def test_disabled_cache_always_computes():
    cache = PerfCache(enabled=False)
    assert cache.cached("parse", "k", lambda: 1) == 1
    assert cache.cached("parse", "k", lambda: 2) == 2
    assert cache.stats.bypasses == 2
    assert cache.stats.lookups == 0


def test_memory_tier_is_bounded(tmp_path):
    cache = PerfCache(memory_entries=4)
    for i in range(10):
        cache.cached("parse", f"k{i}", lambda i=i: i)
    assert cache.nr_memory_entries <= 4


def test_disk_tier_round_trip(tmp_path):
    directory = str(tmp_path / "cache")
    first = PerfCache(directory)
    first.cached("parse", "k", lambda: {"x": [1, 2]},
                 encode=lambda obj: obj, decode=lambda data: data)
    # a fresh instance (= fresh process) warms from disk
    second = PerfCache(directory)
    value = second.cached("parse", "k", lambda: pytest.fail("recompute"),
                          encode=lambda obj: obj,
                          decode=lambda data: data)
    assert value == {"x": [1, 2]}
    assert second.stats.disk_hits == 1


def test_corrupted_disk_entry_recomputes_silently(tmp_path):
    directory = str(tmp_path / "cache")
    first = PerfCache(directory)
    first.cached("parse", "k", lambda: 41,
                 encode=lambda obj: obj, decode=lambda data: data)
    [entry] = [os.path.join(dirpath, name)
               for dirpath, _dirs, names in os.walk(
                   os.path.join(directory, "parse"))
               for name in names if name.endswith(".json")]
    with open(entry, "w") as handle:
        handle.write("{truncated")
    second = PerfCache(directory)
    value = second.cached("parse", "k", lambda: 42,
                          encode=lambda obj: obj,
                          decode=lambda data: data)
    assert value == 42
    assert second.stats.corrupt == 1
    assert second.stats.misses == 1


def test_clear_disk_refuses_nothing_but_never_unrelated_files(tmp_path):
    directory = str(tmp_path / "cache")
    cache = PerfCache(directory)
    cache.cached("parse", "k", lambda: 1,
                 encode=lambda obj: obj, decode=lambda data: data)
    stray = os.path.join(directory, "NOTES.txt")
    with open(stray, "w") as handle:
        handle.write("mine")
    assert cache.clear_disk() == 1
    assert os.path.exists(stray)
    assert sum(usage.entries for usage in cache.disk_usage()) == 0


def test_env_knobs(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE", "off")
    assert not perfcache.cache_from_env().enabled
    monkeypatch.setenv("REPRO_CACHE", "on")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "d"))
    cache = perfcache.cache_from_env()
    assert cache.enabled
    assert cache.directory == str(tmp_path / "d")


# -- codecs ------------------------------------------------------------------


def test_parsed_file_codec_round_trip():
    tree = small_tree()
    path = tree.paths(suffix=".c")[0]
    parsed = parse_file(path, tree.read(path))
    decoded = decode_parsed_file(encode_parsed_file(parsed))
    # re-encoding the decoded object must be byte-identical
    assert json.dumps(encode_parsed_file(decoded)) == \
        json.dumps(encode_parsed_file(parsed))
    assert decoded.path == parsed.path
    assert sorted(decoded.structs) == sorted(parsed.structs)
    assert sorted(decoded.functions) == sorted(parsed.functions)


def test_typeref_interning_shares_objects():
    a = TypeRef.intern("sk_buff", True, 1, None)
    b = TypeRef.intern("sk_buff", True, 1, None)
    assert a is b
    assert TypeRef.intern("sk_buff", True, 2, None) is not a


# -- SPADE wiring ------------------------------------------------------------


def test_unmutated_rerun_hits_for_every_file():
    tree = small_tree()
    cache = PerfCache()
    Spade(tree, cache=cache).analyze()
    misses_after_cold = cache.stats.misses
    Spade(tree, cache=cache).analyze()
    assert cache.stats.misses == misses_after_cold
    # warm run: every parse plus the findings entry comes from memory
    assert cache.stats.memory_hits >= misses_after_cold


def test_mutated_file_misses_only_itself():
    tree = small_tree()
    cache = PerfCache()
    Spade(tree, cache=cache).analyze()
    misses_after_cold = cache.stats.misses
    path = tree.paths(suffix=".c")[0]
    tree.files[path] = tree.read(path) + "\n/* mutated */\n"
    Spade(tree, cache=cache).analyze()
    # one re-parse and one findings recompute; everything else hits
    assert cache.stats.misses == misses_after_cold + 2


def test_parser_version_bump_misses_every_file(monkeypatch):
    tree = small_tree()
    cache = PerfCache()
    Spade(tree, cache=cache).analyze()
    misses_after_cold = cache.stats.misses
    monkeypatch.setattr(cindex_mod, "PARSER_VERSION", 999)
    monkeypatch.setattr(analyzer_mod, "PARSER_VERSION", 999)
    Spade(tree, cache=cache).analyze()
    assert cache.stats.misses == 2 * misses_after_cold


def test_analyzer_version_bump_misses_findings(monkeypatch):
    tree = small_tree()
    cache = PerfCache()
    Spade(tree, cache=cache).analyze()
    misses_after_cold = cache.stats.misses
    monkeypatch.setattr(analyzer_mod, "ANALYZER_VERSION", 999)
    Spade(tree, cache=cache).analyze()
    assert cache.stats.misses == misses_after_cold + 1


def test_max_depth_is_part_of_the_findings_key():
    tree = small_tree()
    cache = PerfCache()
    digests = {Spade(tree, cache=cache, max_depth=d).corpus_digest()
               for d in (2, 3, 4)}
    assert len(digests) == 3


def test_file_digest_tracks_content():
    assert file_digest("a") != file_digest("b")
    assert file_digest("a") == file_digest("a")


# -- layout interning --------------------------------------------------------


def test_identical_struct_defs_share_one_layout():
    tree = small_tree()
    spade_a = Spade(tree, cache=PerfCache())
    spade_b = Spade(tree, cache=PerfCache())
    name = next(iter(spade_a.pahole._structs))
    assert spade_a.pahole.layout(name) is spade_b.pahole.layout(name)


def test_different_struct_defs_do_not_share_layouts():
    a = parse_file("a.h", "struct foo {\n    int x;\n};\n")
    b = parse_file("b.h", "struct foo {\n    long x;\n};\n")
    layout_a = PaholeDb(a.structs).layout("foo")
    layout_b = PaholeDb(b.structs).layout("foo")
    assert layout_a is not layout_b
    assert layout_a.size != layout_b.size
