"""Concurrent PerfCache use: the access pattern the daemon creates.

One-shot CLI runs touch the cache from a single thread; ``repro-dma
serve`` hands one shared :class:`PerfCache` to a pool of workers.
These tests pin the properties that makes safe:

* many threads hammering one cache on the *same* keys compute at most
  a bounded number of times and never corrupt the memory tier,
* two cache instances sharing one directory (daemon + one-shot CLI
  side by side) interoperate through the disk tier,
* a corrupt disk entry under contention is detected by every reader
  (key validation) and recomputed, never served.
"""

from __future__ import annotations

import json
import os
import threading

from repro.perfcache.store import CACHE_SCHEMA, PerfCache, content_key


def _hammer(target, nr_threads: int = 8, rounds: int = 25) -> list:
    """Run ``target(thread_index, round_index)`` from many threads."""
    errors: list[BaseException] = []
    barrier = threading.Barrier(nr_threads)

    def worker(thread_index: int) -> None:
        try:
            barrier.wait(timeout=30)
            for round_index in range(rounds):
                target(thread_index, round_index)
        except BaseException as exc:   # surface into the test thread
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(index,),
                                daemon=True)
               for index in range(nr_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not any(thread.is_alive() for thread in threads)
    return errors


def test_threads_sharing_cache_compute_bounded_times(tmp_path):
    cache = PerfCache(str(tmp_path))
    computes: list[int] = []
    lock = threading.Lock()
    keys = [content_key("entry", str(index)) for index in range(4)]

    def compute_for(index: int):
        def compute():
            with lock:
                computes.append(index)
            return {"value": index * 10}
        return compute

    def target(thread_index: int, round_index: int) -> None:
        key = keys[round_index % len(keys)]
        value = cache.cached("parse", key,
                             compute_for(round_index % len(keys)),
                             encode=lambda obj: obj,
                             decode=lambda payload: payload)
        assert value == {"value": (round_index % len(keys)) * 10}

    errors = _hammer(target)
    assert errors == []
    # cached() is intentionally lock-free: concurrent first lookups of
    # one key may each compute (bounded by thread count), but once any
    # store lands, later lookups must all hit
    assert len(computes) <= 8 * len(keys)
    assert cache.stats.hits > 0
    for key in keys:
        assert cache.cached("parse", key, lambda: {"value": -1},
                            encode=lambda obj: obj,
                            decode=lambda payload: payload) \
            != {"value": -1}


def test_two_instances_share_one_directory(tmp_path):
    """Daemon and one-shot CLI sharing a cache dir: writes from one
    process-equivalent are disk hits in the other."""
    writer = PerfCache(str(tmp_path))
    reader = PerfCache(str(tmp_path))
    key = content_key("shared", "payload")
    assert writer.cached("findings", key, lambda: [1, 2, 3],
                         encode=lambda obj: obj,
                         decode=lambda payload: payload) == [1, 2, 3]

    called = []

    def recompute():
        called.append(True)
        return [9, 9, 9]

    assert reader.cached("findings", key, recompute,
                         encode=lambda obj: obj,
                         decode=lambda payload: payload) == [1, 2, 3]
    assert called == []
    assert reader.stats.disk_hits == 1

    errors = _hammer(lambda thread_index, round_index:
                     PerfCache(str(tmp_path)).cached(
                         "findings", key, recompute,
                         encode=lambda obj: obj,
                         decode=lambda payload: payload),
                     nr_threads=6, rounds=5)
    assert errors == []
    assert called == []   # the disk entry satisfied every instance


def test_corrupt_entry_recovery_under_contention(tmp_path):
    cache = PerfCache(str(tmp_path))
    key = content_key("victim", "entry")
    assert cache.cached("parse", key, lambda: {"good": True},
                        encode=lambda obj: obj,
                        decode=lambda payload: payload) \
        == {"good": True}
    entry_path = os.path.join(str(tmp_path), "parse", key[:2],
                              f"{key}.json")
    assert os.path.isfile(entry_path)

    # flip the key in place: schema validates, key mismatch does not
    with open(entry_path, encoding="utf-8") as handle:
        record = json.load(handle)
    assert record["schema"] == CACHE_SCHEMA
    record["key"] = "0" * len(key)
    record["data"] = {"good": False}
    with open(entry_path, "w", encoding="utf-8") as handle:
        json.dump(record, handle)

    seen: list[dict] = []
    lock = threading.Lock()

    def target(thread_index: int, round_index: int) -> None:
        fresh = PerfCache(str(tmp_path))   # no memory-tier shortcut
        value = fresh.cached("parse", key, lambda: {"good": True},
                             encode=lambda obj: obj,
                             decode=lambda payload: payload)
        with lock:
            seen.append({"value": value,
                         "corrupt": fresh.stats.corrupt})

    errors = _hammer(target, nr_threads=6, rounds=3)
    assert errors == []
    # nobody was ever served the corrupt payload
    assert all(entry["value"] == {"good": True} for entry in seen)
    # at least the first reader saw the mismatch before a rewrite won
    assert any(entry["corrupt"] > 0 for entry in seen)
    # and the entry on disk healed: a later cold reader disk-hits
    healed = PerfCache(str(tmp_path))
    assert healed.cached("parse", key, lambda: {"good": False},
                         encode=lambda obj: obj,
                         decode=lambda payload: payload) \
        == {"good": True}
    assert healed.stats.disk_hits == 1


def test_memory_tier_eviction_races_stay_consistent(tmp_path):
    """Tiny memory tier + many threads: the eviction loop's lost races
    (victim vanishing mid-delete) must never error or lose writes."""
    cache = PerfCache(None, memory_entries=2)

    def target(thread_index: int, round_index: int) -> None:
        key = content_key("evict", str(thread_index), str(round_index))
        value = cache.cached("parse", key,
                             lambda: (thread_index, round_index))
        assert value == (thread_index, round_index)

    errors = _hammer(target, nr_threads=8, rounds=40)
    assert errors == []
    assert cache.nr_memory_entries <= 2 + 8   # bounded, racy slack
