"""The differential correctness gate: cached == uncached, always.

The cache is only allowed to make analysis faster, never different.
These tests run SPADE cold (caching disabled), then warm (disk tier
populated and re-read), over the base corpus and five mutated campaign
corpora, and require byte-identical encoded findings plus identical
rendered Table 2 text -- the same comparison ``repro-dma cache
verify`` performs in CI.
"""

import json
import os

import pytest

from repro import perfcache
from repro.campaign.mutate import CorpusMutator
from repro.core.spade.analyzer import Spade
from repro.core.spade.findings import Table2Stats
from repro.core.spade.report import format_table2
from repro.perfcache import PerfCache
from repro.perfcache.codec import encode_findings

SCALE = 0.08


@pytest.fixture(autouse=True)
def _fresh_default_cache(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    perfcache.reset_default()
    yield
    perfcache.reset_default()


def analysis_outputs(tree, cache):
    findings = Spade(tree, cache=cache).analyze()
    return (json.dumps(encode_findings(findings)),
            format_table2(Table2Stats.from_findings(findings)))


@pytest.mark.parametrize("campaign_seed", [1, 2, 3, 4, 5])
def test_warm_equals_cold_across_mutated_corpora(campaign_seed,
                                                 tmp_path):
    """Property: for any mutated corpus, cold == disk-cold == warm."""
    mutator = CorpusMutator(2021, scale=SCALE)
    tree = mutator.derive(campaign_seed, 4).tree

    cold = analysis_outputs(tree, PerfCache(enabled=False))
    directory = str(tmp_path / "cache")
    populate = analysis_outputs(tree, PerfCache(directory))
    warm = analysis_outputs(tree, PerfCache(directory))

    assert populate == cold
    assert warm == cold


def test_base_corpus_warm_equals_cold(tmp_path):
    tree, _manifest = CorpusMutator(2021, scale=SCALE).base()
    cold = analysis_outputs(tree, PerfCache(enabled=False))
    directory = str(tmp_path / "cache")
    assert analysis_outputs(tree, PerfCache(directory)) == cold
    assert analysis_outputs(tree, PerfCache(directory)) == cold


def test_corrupted_entries_never_change_results(tmp_path):
    """Truncate every on-disk entry; analysis must silently recompute
    and still match the uncached run."""
    tree, _manifest = CorpusMutator(2021, scale=SCALE).base()
    cold = analysis_outputs(tree, PerfCache(enabled=False))

    directory = str(tmp_path / "cache")
    analysis_outputs(tree, PerfCache(directory))
    corrupted = 0
    for namespace in ("parse", "findings"):
        for dirpath, _dirs, names in os.walk(
                os.path.join(directory, namespace)):
            for name in names:
                with open(os.path.join(dirpath, name), "w") as handle:
                    handle.write("{not json")
                corrupted += 1
    assert corrupted > 0

    recovered = PerfCache(directory)
    assert analysis_outputs(tree, recovered) == cold
    assert recovered.stats.corrupt == corrupted
    assert recovered.stats.disk_hits == 0


def test_campaign_derivation_unaffected_by_corpus_cache(tmp_path):
    """derive() through the shared cache equals an uncached derive."""
    baseline = CorpusMutator(2021, scale=SCALE)
    perfcache.configure(enabled=False)
    cold = baseline.derive(3, 4)

    perfcache.configure(str(tmp_path / "cache"))
    populate = CorpusMutator(2021, scale=SCALE).derive(3, 4)
    perfcache.configure(str(tmp_path / "cache"))
    warm = CorpusMutator(2021, scale=SCALE).derive(3, 4)

    for derived in (populate, warm):
        assert derived.tree.files == cold.tree.files
        assert derived.manifest.sites == cold.manifest.sites
        assert derived.mutations == cold.mutations
