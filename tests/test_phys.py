"""PhysicalMemory: byte-accurate pages, cross-page access, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BadAddressError
from repro.mem.phys import (PAGE_SIZE, PhysicalMemory, page_offset,
                            paddr_to_pfn, pfn_to_paddr)


def test_pfn_paddr_roundtrip():
    assert paddr_to_pfn(pfn_to_paddr(123)) == 123
    assert pfn_to_paddr(1) == PAGE_SIZE


def test_page_offset_is_low_bits():
    assert page_offset(0x12345) == 0x345


def test_pages_start_zeroed():
    mem = PhysicalMemory(4)
    assert mem.read(0, 16) == bytes(16)


def test_write_then_read():
    mem = PhysicalMemory(4)
    mem.write(100, b"hello")
    assert mem.read(100, 5) == b"hello"


def test_cross_page_write_and_read():
    mem = PhysicalMemory(4)
    data = bytes(range(100))
    mem.write(PAGE_SIZE - 40, data)
    assert mem.read(PAGE_SIZE - 40, 100) == data
    # both pages hold their halves
    assert mem.page(0).data[-40:] == data[:40]
    assert mem.page(1).data[:60] == data[40:]


def test_out_of_range_read_raises():
    mem = PhysicalMemory(2)
    with pytest.raises(BadAddressError):
        mem.read(2 * PAGE_SIZE - 4, 8)


def test_out_of_range_write_raises():
    mem = PhysicalMemory(2)
    with pytest.raises(BadAddressError):
        mem.write(2 * PAGE_SIZE, b"x")


def test_negative_length_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory(2).read(0, -1)


def test_bad_pfn_raises():
    mem = PhysicalMemory(2)
    with pytest.raises(BadAddressError):
        mem.page(5)
    with pytest.raises(BadAddressError):
        mem.page(-1)


def test_u64_little_endian():
    mem = PhysicalMemory(2)
    mem.write_u64(8, 0x0102030405060708)
    assert mem.read(8, 8) == bytes([8, 7, 6, 5, 4, 3, 2, 1])
    assert mem.read_u64(8) == 0x0102030405060708


def test_u64_truncates_to_64_bits():
    mem = PhysicalMemory(2)
    mem.write_u64(0, 1 << 70 | 5)
    assert mem.read_u64(0) == 5


def test_fixed_width_helpers():
    mem = PhysicalMemory(1)
    mem.write_u8(0, 0xAB)
    mem.write_u16(2, 0xBEEF)
    mem.write_u32(4, 0xDEADBEEF)
    assert mem.read_u8(0) == 0xAB
    assert mem.read_u16(2) == 0xBEEF
    assert mem.read_u32(4) == 0xDEADBEEF


def test_nr_pages_must_be_positive():
    with pytest.raises(ValueError):
        PhysicalMemory(0)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_property_write_read_roundtrip(data):
    """Any in-bounds write is read back identically."""
    mem = PhysicalMemory(8)
    paddr = data.draw(st.integers(0, 8 * PAGE_SIZE - 1))
    max_len = min(256, 8 * PAGE_SIZE - paddr)
    payload = data.draw(st.binary(min_size=1, max_size=max_len))
    mem.write(paddr, payload)
    assert mem.read(paddr, len(payload)) == payload


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8 * PAGE_SIZE - 9),
                          st.integers(0, 2**64 - 1)),
                min_size=1, max_size=24))
def test_property_last_u64_write_wins(writes):
    """Later writes to the same address shadow earlier ones."""
    mem = PhysicalMemory(8)
    last = {}
    for paddr, value in writes:
        paddr &= ~7  # aligned, so writes either alias fully or not at all
        mem.write_u64(paddr, value)
        last[paddr] = value
    for paddr, value in last.items():
        assert mem.read_u64(paddr) == value
