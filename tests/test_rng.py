"""DeterministicRng: reproducibility and domain separation."""

from repro.sim.rng import DeterministicRng

import pytest


def test_same_seed_same_stream():
    a = DeterministicRng(1)
    b = DeterministicRng(1)
    assert [a.randint(0, 100) for _ in range(20)] == \
        [b.randint(0, 100) for _ in range(20)]


def test_different_seeds_differ():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.randint(0, 10**9) for _ in range(8)] != \
        [b.randint(0, 10**9) for _ in range(8)]


def test_children_are_independent_of_draw_order():
    """Draining one child's stream must not perturb a sibling."""
    root1 = DeterministicRng(5)
    first = root1.child("a")
    _ = [first.random() for _ in range(100)]
    sibling1 = root1.child("b")
    value1 = sibling1.randint(0, 10**9)

    root2 = DeterministicRng(5)
    sibling2 = root2.child("b")
    value2 = sibling2.randint(0, 10**9)
    assert value1 == value2


def test_child_domains_nest():
    rng = DeterministicRng(3).child("x").child("y")
    assert rng.domain == "root/x/y"


def test_aligned_choice_respects_alignment():
    rng = DeterministicRng(11)
    for _ in range(50):
        value = rng.aligned_choice(0x1000, 0x100000, 0x200)
        assert value % 0x200 == 0
        assert 0x1000 <= value < 0x100000


def test_aligned_choice_no_slot_raises():
    rng = DeterministicRng(1)
    with pytest.raises(ValueError):
        rng.aligned_choice(0x10, 0x20, 0x1000)


def test_aligned_choice_single_slot():
    rng = DeterministicRng(1)
    assert rng.aligned_choice(0, 1, 0x1000) == 0


def test_randbytes_deterministic():
    assert DeterministicRng(9).randbytes(16) == \
        DeterministicRng(9).randbytes(16)
