"""repro.serve: protocol, daemon lifecycle, admission, isolation."""

import json
import socket
import threading

import pytest

from repro import faults, metrics, trace
from repro.errors import ServeError
from repro.faults.spec import FaultSpec, SiteRule
from repro.serve import (AnalysisServer, CorpusLru, ServeClient,
                         ServeConfig, ServeStats, batch_key,
                         canonical_json, normalize_request,
                         parse_request)
from repro.serve.protocol import MAX_LINE_BYTES

SCALE = 0.08


# -- protocol --------------------------------------------------------------

def test_parse_request_fills_defaults():
    request = parse_request(b'{"type": "analyze"}')
    assert request == {"type": "analyze", "corpus_seed": 2021,
                       "scale": 1.0, "include_findings": True}


def test_parse_request_normalizes_int_scale_to_float():
    request = parse_request(b'{"type": "analyze", "scale": 1}')
    assert request["scale"] == 1.0
    assert isinstance(request["scale"], float)


def test_parse_request_rejects_garbage():
    with pytest.raises(ServeError, match="not valid JSON"):
        parse_request(b"not json at all")
    with pytest.raises(ServeError, match="JSON object"):
        parse_request(b'[1, 2]')
    with pytest.raises(ServeError, match="unknown request type"):
        parse_request(b'{"type": "frobnicate"}')
    with pytest.raises(ServeError, match="exceeds"):
        parse_request(b"x" * (MAX_LINE_BYTES + 1))


def test_parse_request_type_checks_fields():
    with pytest.raises(ServeError, match="'scale'"):
        parse_request(b'{"type": "analyze", "scale": "big"}')
    with pytest.raises(ServeError, match="must be > 0"):
        parse_request(b'{"type": "analyze", "scale": -1}')
    with pytest.raises(ServeError, match="'seed' is required"):
        parse_request(b'{"type": "replay"}')
    with pytest.raises(ServeError, match="unknown chaos workload"):
        parse_request(b'{"type": "chaos", "workload": "ringflood"}')
    with pytest.raises(ServeError, match="request id"):
        parse_request(b'{"type": "ping", "id": true}')


def test_batch_key_only_coalesces_analyze():
    analyze = normalize_request({"type": "analyze", "scale": 0.5})
    spelled = normalize_request({"type": "analyze", "scale": 0.5,
                                 "corpus_seed": 2021, "id": 9})
    assert batch_key(analyze) == batch_key(spelled)
    assert batch_key(normalize_request({"type": "replay",
                                        "seed": 1})) is None
    assert batch_key(normalize_request({"type": "ping"})) is None


# -- daemon fixture --------------------------------------------------------

@pytest.fixture(scope="module")
def server():
    instance = AnalysisServer(ServeConfig(
        host="127.0.0.1", port=0, workers=2, queue_bound=8,
        allow_debug_sleep=True, install_metrics=False))
    address = instance.start()
    try:
        yield instance, address
    finally:
        instance.stop()


def _client(address, **kwargs) -> ServeClient:
    return ServeClient(host=address[0], port=address[1],
                       timeout_s=120.0, **kwargs)


# -- request types ---------------------------------------------------------

def test_ping(server):
    _, address = server
    with _client(address) as client:
        response = client.ping()
    assert response["status"] == "ok"
    assert response["type"] == "ping"
    assert "version" in response


def test_analyze_round_trip(server):
    _, address = server
    with _client(address) as client:
        response = client.request({"type": "analyze", "scale": SCALE,
                                   "include_findings": True})
    assert response["status"] == "ok"
    assert response["nr_findings"] == len(response["findings"])
    assert response["nr_findings"] > 0
    assert "table2" in response
    assert 0.0 <= response["precision"] <= 1.0


def test_analyze_repeats_are_byte_identical(server):
    _, address = server
    request = {"type": "analyze", "scale": SCALE,
               "include_findings": True}
    with _client(address) as client:
        first, _ = client.request_raw(request)
        second, _ = client.request_raw(request)
    assert first == second


def test_analyze_can_omit_findings_payload(server):
    _, address = server
    with _client(address) as client:
        response = client.request({"type": "analyze", "scale": SCALE,
                                   "include_findings": False})
    assert "findings" not in response
    assert response["nr_findings"] > 0


def test_replay_repeats_are_byte_identical(server):
    _, address = server
    request = {"type": "replay", "seed": 3, "scale": SCALE,
               "mutations": 2}
    with _client(address) as client:
        first, doc = client.request_raw(request)
        second, _ = client.request_raw(request)
    assert first == second
    assert doc["status"] == "ok"
    assert doc["record"]["status"] == "ok"
    assert "duration_s" not in doc["record"]  # volatile keys stripped


def test_chaos_request(server):
    _, address = server
    with _client(address) as client:
        response = client.request({"type": "chaos",
                                   "workload": "storage",
                                   "rounds": 4, "commands": 8})
    assert response["status"] == "ok"
    assert response["ok"] is True
    assert response["line"].startswith("workload storage: ok (")
    assert isinstance(response["fired"], dict)


def test_request_id_is_echoed(server):
    _, address = server
    with _client(address) as client:
        response = client.request({"type": "ping", "id": "abc-123"})
    assert response["id"] == "abc-123"


def test_protocol_error_answers_without_killing_connection(server):
    _, address = server
    sock = socket.create_connection(address, timeout=30)
    try:
        sock.sendall(b"this is not json\n")
        reader = sock.makefile("rb")
        response = json.loads(reader.readline())
        assert response["status"] == "error"
        assert "JSON" in response["error"]
        # same connection still serves valid requests afterwards
        sock.sendall(b'{"type": "ping"}\n')
        assert json.loads(reader.readline())["status"] == "ok"
    finally:
        sock.close()


def test_handler_exception_becomes_error_response(server):
    _, address = server
    with _client(address) as client, \
            pytest.raises(ServeError, match="server error"):
        # a fault-spec with an unknown site fails inside the handler
        client.request({"type": "chaos", "workload": "storage",
                        "plan": {"seed": 0, "rules":
                                 [{"site": "no.such.site",
                                   "probability": 1.0}]}})
    # and the daemon is still healthy
    with _client(address) as client:
        assert client.ping()["status"] == "ok"


# -- admission control -----------------------------------------------------

def test_overload_is_rejected_explicitly():
    instance = AnalysisServer(ServeConfig(
        host="127.0.0.1", port=0, workers=1, queue_bound=1,
        allow_debug_sleep=True))
    address = instance.start()
    try:
        sock = socket.create_connection(address, timeout=30)
        reader = sock.makefile("rb")
        # pipeline a burst: 1 executing + 1 queued, the rest must be
        # turned away with an explicit retryable rejection
        for index in range(8):
            sock.sendall(canonical_json(
                {"type": "ping", "sleep_ms": 150,
                 "id": index}).encode() + b"\n")
        statuses = [json.loads(reader.readline())["status"]
                    for _ in range(8)]
        sock.close()
        assert statuses.count("rejected") >= 1
        assert statuses.count("ok") >= 1
        assert len(statuses) == 8  # every request got an answer
        snapshot = instance.stats.snapshot()
        assert snapshot["rejected"] >= 1
        # after the burst drains the daemon accepts work again
        with ServeClient(host=address[0], port=address[1]) as client:
            assert client.ping()["status"] == "ok"
    finally:
        instance.stop()


def test_client_retries_through_rejections():
    instance = AnalysisServer(ServeConfig(
        host="127.0.0.1", port=0, workers=1, queue_bound=1,
        allow_debug_sleep=True))
    address = instance.start()
    try:
        results = []

        def hammer() -> None:
            with ServeClient(host=address[0], port=address[1],
                             retries=20, backoff_s=0.05) as client:
                results.append(client.request(
                    {"type": "ping", "sleep_ms": 50}))

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 6
        assert all(r["status"] == "ok" for r in results)
    finally:
        instance.stop()


# -- the corpus LRU --------------------------------------------------------

def test_corpus_lru_hits_and_evicts():
    stats = ServeStats()
    lru = CorpusLru(1, stats)  # 1 byte: any second entry evicts
    tree_a, _ = lru.get(2021, 0.05)
    tree_again, _ = lru.get(2021, 0.05)
    assert tree_again is tree_a              # LRU hit, same object
    lru.get(2022, 0.05)                      # over budget -> evict A
    assert stats.corpus_hits == 1
    assert stats.corpus_misses == 2
    assert stats.corpus_evictions == 1
    assert len(lru) == 1                     # newest entry survives
    tree_b, _ = lru.get(2021, 0.05)
    assert tree_b is not tree_a              # regenerated after evict


def test_corpus_lru_single_flights_concurrent_generation():
    stats = ServeStats()
    lru = CorpusLru(64 << 20, stats)
    results = []

    def fetch() -> None:
        results.append(lru.get(2021, 0.05)[0])

    threads = [threading.Thread(target=fetch) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len({id(tree) for tree in results}) == 1
    assert stats.corpus_misses == 1          # generated exactly once


# -- single-flight request batching ----------------------------------------

def test_identical_analyzes_coalesce(monkeypatch):
    from repro.serve import handlers, server as server_mod
    instance = AnalysisServer(ServeConfig(host="127.0.0.1", port=0))
    computing = threading.Event()
    gate = threading.Event()
    computed = []

    def slow_analyze(tree, manifest):
        computed.append(1)
        computing.set()
        gate.wait(timeout=30)
        return {"nr_findings": 7, "findings": [],
                "findings_digest": "x", "nr_files": 1, "table2": ""}

    class FakeTree:
        files = {"drv.c": "int x;"}

    monkeypatch.setattr(handlers, "analyze_corpus", slow_analyze)
    monkeypatch.setattr(
        server_mod.CorpusLru, "_generate",
        staticmethod(lambda seed, scale: (FakeTree(), None)))
    request = normalize_request({"type": "analyze", "scale": 0.5})
    results = []

    def worker() -> None:
        results.append(instance._coalesced_analyze(request))

    threads = [threading.Thread(target=worker) for _ in range(3)]
    for thread in threads:
        thread.start()
    assert computing.wait(timeout=30)   # leader is inside the compute
    gate.set()
    for thread in threads:
        thread.join()
    assert len(computed) == 1   # one computation, three answers
    assert all(result["nr_findings"] == 7 for result in results)
    assert instance.stats.batched == 2


# -- chaos weather: the serve fault sites ----------------------------------

def test_serve_fault_sites_recover_with_identical_payloads(server):
    _, address = server
    with _client(address) as client:
        baseline = client.request({"type": "analyze", "scale": SCALE,
                                   "include_findings": False})
    spec = FaultSpec([
        SiteRule("serve.accept_drop", at_steps=(0,)),
        SiteRule("serve.request_abort", at_steps=(0,)),
    ], seed=3)
    kernel_spec, tooling_spec = spec.split()
    assert not kernel_spec.rules     # serve.* is a tooling prefix
    assert tooling_spec.sites == {"serve.accept_drop",
                                  "serve.request_abort"}
    plan = tooling_spec.compile()
    instance, _ = server
    before = instance.stats.snapshot()
    with faults.session(plan):
        with _client(address, retries=10) as client:
            faulted = client.request({"type": "analyze",
                                      "scale": SCALE,
                                      "include_findings": False})
    assert plan.fired_counts() == {"serve.accept_drop": 1,
                                   "serve.request_abort": 1}
    after = instance.stats.snapshot()
    assert after["accept_drops"] == before["accept_drops"] + 1
    assert after["aborted"] == before["aborted"] + 1
    # the retried request answered exactly what a fault-free one does
    assert faulted["findings_digest"] == baseline["findings_digest"]
    assert faulted["table2"] == baseline["table2"]


# -- per-request isolation (the state-leakage fix) -------------------------

def _deterministic_export(registry) -> str:
    """Export of the simulation-derived subsystems only (spade timing
    histograms are wall-clock and legitimately vary run to run)."""
    record = metrics.json_record(registry)
    keep = ("dma", "iommu", "net", "mem", "dkasan", "sim")
    return canonical_json([sample for sample in record["metrics"]
                           if sample["subsystem"] in keep])


def _boot_and_run() -> None:
    from repro.sim.kernel import Kernel
    from repro.sim.workload import run_compile_and_ping
    kernel = Kernel(seed=11, phys_mb=256)
    nic = kernel.add_nic("eth0")
    run_compile_and_ping(kernel, nic, rounds=3)


def test_reset_for_request_gives_independent_exports():
    exports = []
    with metrics.session() as registry:
        for _ in range(2):   # two back-to-back "requests"
            _boot_and_run()
            exports.append(_deterministic_export(registry))
            assert metrics.reset_for_request() > 0
            trace.unbind_clock()
        # after a reset the per-request subsystems are gone until the
        # next boot publishes them again
        assert "dma" not in registry.subsystems_present()
    assert exports[0] == exports[1]


def test_without_reset_stale_kernel_leaks_into_next_export():
    """The leak this PR fixes: a request that boots no kernel still
    exports the previous request's kernel collector slot (last-boot
    wins); after ``reset_for_request`` the export is clean."""
    with metrics.session() as registry:
        _boot_and_run()
        stale = _deterministic_export(registry)
        assert stale != canonical_json([])   # the boot published samples
        # "request 2" runs no simulation, yet without a reset its
        # export still carries request 1's kernel
        assert _deterministic_export(registry) == stale
        metrics.reset_for_request()
        assert _deterministic_export(registry) == canonical_json([])


def test_reset_preserves_cumulative_subsystems():
    with metrics.session() as registry:
        registry.counter("serve", "requests").inc()
        registry.counter("perfcache", "probe").inc(3)
        _boot_and_run()
        metrics.reset_for_request()
        assert registry.counter("serve", "requests").value == 1
        assert registry.counter("perfcache", "probe").value == 3


def test_unbind_clock_stops_stale_stamping():
    from repro.sim.kernel import Kernel
    with trace.session(categories=("iommu", "dma")) as recorder:
        kernel = Kernel(seed=7, phys_mb=256)
        kernel.clock.advance_us(25.0)
        assert recorder.now_us > 0.0    # bound to the boot's clock
        trace.unbind_clock()
        assert recorder.now_us == 0.0   # no stale time base
        other = Kernel(seed=8, phys_mb=256)
        other.clock.advance_us(25.0)
        assert recorder.now_us > 0.0    # next boot re-binds


def test_reset_is_noop_when_metrics_off():
    assert metrics.reset_for_request() == 0


# -- serve metrics subsystem -----------------------------------------------

def test_serve_collector_publishes_registry_samples():
    instance = AnalysisServer(ServeConfig(
        host="127.0.0.1", port=0, workers=1, queue_bound=2))
    address = instance.start()
    try:
        registry = metrics.active()
        assert registry is not None   # the daemon installed one
        with ServeClient(host=address[0], port=address[1]) as client:
            client.ping()
        record = metrics.json_record(registry)
        by_name = {(s["subsystem"], s["name"], tuple(sorted(
            s["labels"].items()))): s for s in record["metrics"]}
        assert by_name[("serve", "requests",
                        (("status", "ok"),
                         ("type", "ping")))]["value"] == 1
        assert ("serve", "queue_depth", ()) in by_name
        assert ("serve", "cache_hit_ratio", ()) in by_name
        latency = by_name[("serve", "latency_ms",
                           (("type", "ping"),))]
        assert latency["kind"] == "histogram"
        assert latency["histogram"]["count"] == 1
    finally:
        instance.stop()
    assert metrics.active() is None   # daemon uninstalled its registry


def test_render_serve_stats():
    from repro.report import render_serve_stats
    stats = ServeStats()
    stats.note_connection()
    stats.begin_request()
    stats.finish_request("analyze", "ok", 12.5)
    text = render_serve_stats(stats.snapshot())
    assert "serve_stats:" in text
    assert "analyze/ok" in text
    assert "CorpusHitRatio" in text
    assert "Latency_analyze" in text
