"""Differential invariant: served answers == one-shot CLI answers.

The serving layer's core promise (ISSUE 6, EXPERIMENTS E21) is that a
warm daemon never *changes* an answer, only its latency.  These tests
drive a real daemon over TCP and compare byte-for-byte against the
equivalent cold, in-process code path the CLI uses:

* analyze  vs ``repro-dma audit --scale S --findings-json``
* replay   vs a one-shot ``run_seed`` (campaign --seeds 1, no trace)
* chaos    vs a locally computed phase-A ``_run_workload`` line

plus the loadgen plumbing (deterministic schedules, the BENCH merge).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import metrics
from repro.errors import ServeError
from repro.serve import (AnalysisServer, LoadgenConfig, ServeClient,
                         ServeConfig, build_schedule, canonical_json,
                         format_loadgen_report, merge_into_bench,
                         parse_mix, run_loadgen, serve_history_record,
                         serve_signature)

SCALE = 0.08          # small corpus: differential fidelity, not load
REPLAY_SCALE = 0.08
REPLAY_SEED = 3
REPLAY_MUTATIONS = 3


@pytest.fixture(scope="module")
def server():
    instance = AnalysisServer(ServeConfig(
        host="127.0.0.1", port=0, workers=2, queue_bound=8,
        install_metrics=False))
    address = instance.start()
    yield address
    instance.stop()


@pytest.fixture(scope="module")
def client(server):
    with ServeClient(host=server[0], port=server[1]) as instance:
        yield instance


# -- analyze vs audit ------------------------------------------------------

def test_analyze_matches_audit_cli(server, client, tmp_path, capsys):
    from repro.cli import main

    findings_path = tmp_path / "findings.json"
    assert main(["audit", "--scale", str(SCALE),
                 "--findings-json", str(findings_path)]) == 0
    audit_stdout = capsys.readouterr().out
    audit_bytes = findings_path.read_bytes()

    response = client.request({"type": "analyze", "scale": SCALE})
    served_bytes = (canonical_json(response["findings"])
                    + "\n").encode("utf-8")
    assert served_bytes == audit_bytes
    assert response["table2"] in audit_stdout
    assert response["nr_findings"] == len(response["findings"])


def test_analyze_digest_stable_across_daemon_lifetime(client):
    first = client.request({"type": "analyze", "scale": SCALE,
                            "include_findings": False})
    second = client.request({"type": "analyze", "scale": SCALE,
                             "include_findings": False})
    assert first == second   # warm cache may speed it up, never alter it


# -- replay vs one-shot campaign seed --------------------------------------

def test_replay_matches_oneshot_run_seed(server, client):
    from repro.campaign.results import _VOLATILE_KEYS, findings_digest
    from repro.campaign.runner import run_seed

    record = run_seed(REPLAY_SEED, base_seed=2021,
                      mutations_per_seed=REPLAY_MUTATIONS,
                      scale=REPLAY_SCALE, phys_mb=256, trace_events=0)
    expected_digest = findings_digest({REPLAY_SEED: record})

    response = client.request({"type": "replay", "seed": REPLAY_SEED,
                               "scale": REPLAY_SCALE,
                               "mutations": REPLAY_MUTATIONS})
    assert response["findings_digest"] == expected_digest
    stripped = {key: value for key, value in sorted(record.items())
                if key not in _VOLATILE_KEYS}
    assert response["record"] == stripped
    for volatile in _VOLATILE_KEYS:
        assert volatile not in response["record"]


# -- chaos vs one-shot workload line ---------------------------------------

def test_chaos_matches_oneshot_workload_line(server, client):
    from repro.faults.chaos import _run_workload
    from repro.faults.spec import standard_spec

    kernel_spec, _tooling = standard_spec(0).split()
    plan = kernel_spec.compile(stream=7)
    outcome = _run_workload("storage", plan, seed=5, rounds=6,
                            commands=8, profile_boots=0)
    status = "ok" if outcome.ok else "UNRECOVERED"
    expected_line = (f"workload {outcome.name}: {status} "
                     f"({outcome.recovered} fault(s) recovered; "
                     f"{outcome.detail})")
    expected_fired = plan.fired_counts()

    response = client.request({"type": "chaos", "workload": "storage",
                               "plan_seed": 0, "stream": 7, "seed": 5,
                               "rounds": 6, "commands": 8})
    assert response["line"] == expected_line
    assert response["fired"] == expected_fired
    assert response["ok"] == outcome.ok


# -- loadgen ---------------------------------------------------------------

def test_build_schedule_is_deterministic_and_weighted():
    config = LoadgenConfig(nr_requests=20, mix={"analyze": 6,
                                                "replay": 3,
                                                "chaos": 1})
    first = build_schedule(config)
    second = build_schedule(config)
    assert first == second                      # no RNG anywhere
    counts: dict[str, int] = {}
    for request in first:
        counts[request["type"]] = counts.get(request["type"], 0) + 1
    assert counts == {"analyze": 12, "replay": 6, "chaos": 2}
    assert [request["id"] for request in first] == list(range(20))


def test_parse_mix():
    assert parse_mix("analyze=6,replay=3,chaos=1") == {
        "analyze": 6, "replay": 3, "chaos": 1}
    assert parse_mix("ping") == {"ping": 1}
    with pytest.raises(ServeError):
        parse_mix("bogus=1")
    with pytest.raises(ServeError):
        parse_mix("analyze=x")
    with pytest.raises(ServeError):
        parse_mix("analyze=0")


def test_loadgen_against_live_server(server):
    config = LoadgenConfig(nr_requests=8, connections=2, rps=0.0,
                           mix={"analyze": 3, "ping": 1}, scale=SCALE,
                           cold_baseline=False)
    report = run_loadgen(config, host=server[0], port=server[1])
    assert report["ok"] is True
    assert report["nr_sent"] == 8
    assert report["nr_failed"] == 0
    assert set(report["latency"]) == {"analyze", "ping"}
    assert report["latency"]["analyze"]["count"] == 6
    text = format_loadgen_report(report)
    assert "loadgen verdict: PASS" in text


def test_merge_into_bench_and_history_record(tmp_path):
    report = {"schema": 1, "ok": True, "achieved_rps": 12.5,
              "nr_sent": 8, "nr_failed": 0, "elapsed_s": 0.5,
              "oneshot_cold_s": 0.4, "warm_analyze_p50_s": 0.02,
              "speedup_warm_vs_cold": 20.0,
              "config": {"nr_requests": 8, "connections": 2,
                         "target_rps": 0.0, "scale": SCALE,
                         "mix": {"analyze": 3, "ping": 1}},
              "latency": {"analyze": {"p50_s": 0.02}}}
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"spade": {"files_per_s": 100}}),
                    encoding="utf-8")
    merge_into_bench(report, str(path))
    merged = json.loads(path.read_text(encoding="utf-8"))
    assert merged["spade"] == {"files_per_s": 100}   # preserved
    assert merged["serve"]["achieved_rps"] == 12.5

    signature = serve_signature(report)
    assert signature.startswith("serve:")            # never cross-gates
    record = serve_history_record(report)
    assert record["signature"] == signature
    assert record["metrics"]["serve_speedup_warm_vs_cold"] == 20.0
    assert record["metrics"]["serve_analyze_p50_s"] == 0.02
    assert record["ok"] is True


def test_loadgen_concurrent_with_direct_clients(server):
    """Loadgen traffic and ad-hoc clients share one daemon cleanly."""
    config = LoadgenConfig(nr_requests=6, connections=2, rps=0.0,
                           mix={"ping": 1}, cold_baseline=False)
    reports: list[dict] = []

    def background() -> None:
        reports.append(run_loadgen(config, host=server[0],
                                   port=server[1]))

    thread = threading.Thread(target=background, daemon=True)
    thread.start()
    with ServeClient(host=server[0], port=server[1]) as direct:
        for _ in range(4):
            direct.ping()
    thread.join(timeout=60)
    assert not thread.is_alive()
    assert reports and reports[0]["ok"] is True
