"""SkBuff: data, frags-in-memory, clone refcounting."""

import pytest

from repro.errors import NetStackError


def make_skb(kernel, size=512):
    return kernel.skb_alloc.alloc_skb(size)


def test_put_and_data_roundtrip(kernel):
    skb = make_skb(kernel)
    skb.put(b"payload!")
    assert skb.data() == b"payload!"
    assert skb.len == 8


def test_put_over_capacity_rejected(kernel):
    skb = make_skb(kernel, 64)
    with pytest.raises(NetStackError):
        skb.put(b"x" * 65)


def test_shared_info_lives_at_buffer_tail(kernel):
    skb = make_skb(kernel, 512)
    assert skb.shared_info_kva == skb.head_kva + 512
    assert skb.get_dataref() == 1


def test_device_visible_shared_info(kernel):
    """A write to the shared-info bytes is what the kernel later reads:
    the struct genuinely lives in the mapped buffer."""
    skb = make_skb(kernel)
    info = skb.shared_info()
    paddr = kernel.addr_space.paddr_of_kva(skb.shared_info_kva)
    kernel.phys.write_u64(paddr + 40, 0xDEAD)  # destructor_arg bytes
    assert info.read("destructor_arg") == 0xDEAD


def test_add_frag_writes_struct_page_pointer(kernel):
    skb = make_skb(kernel)
    skb.add_frag(100, 0x80, 256)
    frags = skb.frags()
    assert len(frags) == 1
    assert frags[0].page_ptr == kernel.addr_space.struct_page_of_pfn(100)
    assert frags[0].page_offset == 0x80
    assert frags[0].size == 256
    assert skb.frag_pfn(frags[0]) == 100
    assert skb.data_len == 256


def test_frag_bytes_reads_physical_memory(kernel):
    skb = make_skb(kernel)
    kernel.phys.write(100 * 4096 + 0x80, b"fragdata")
    skb.add_frag(100, 0x80, 8)
    assert skb.frag_bytes(skb.frags()[0]) == b"fragdata"


def test_frags_array_capacity(kernel):
    skb = make_skb(kernel)
    for i in range(17):
        skb.add_frag(10 + i, 0, 64)
    with pytest.raises(NetStackError):
        skb.add_frag(99, 0, 64)


def test_clone_bumps_dataref(kernel):
    skb = make_skb(kernel)
    skb.clone_ref()
    assert skb.get_dataref() == 2


def test_skb_ids_unique(kernel):
    a = make_skb(kernel)
    b = make_skb(kernel)
    assert a.skb_id != b.skb_id
