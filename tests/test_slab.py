"""SlabAllocator: size classes, on-page freelist metadata, reuse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocatorError
from repro.mem.buddy import BuddyAllocator
from repro.mem.phys import PAGE_SIZE, PhysicalMemory
from repro.mem.slab import KMALLOC_SIZES, SlabAllocator
from repro.mem.virt import IdentityTranslator


def make_slab(nr_pages=4096):
    phys = PhysicalMemory(nr_pages)
    buddy = BuddyAllocator(phys, reserved_low_pages=16)
    return phys, SlabAllocator(phys, buddy, IdentityTranslator())


def test_size_class_rounding():
    _phys, slab = make_slab()
    assert slab.size_class(1) == 8
    assert slab.size_class(8) == 8
    assert slab.size_class(9) == 16
    assert slab.size_class(100) == 128
    assert slab.size_class(600) == 1024
    assert slab.size_class(8192) == 8192


def test_oversized_request_rejected():
    _phys, slab = make_slab()
    with pytest.raises(AllocatorError):
        slab.kmalloc(8193)


def test_non_positive_rejected():
    _phys, slab = make_slab()
    with pytest.raises(AllocatorError):
        slab.kmalloc(0)


def test_same_class_objects_share_a_page():
    """Type (d)'s root cause: kmalloc packs same-class objects."""
    _phys, slab = make_slab()
    a = slab.kmalloc(100)
    b = slab.kmalloc(100)
    assert a // PAGE_SIZE == b // PAGE_SIZE
    assert abs(a - b) == 128  # adjacent 128-byte slots


def test_ksize_returns_class():
    _phys, slab = make_slab()
    kva = slab.kmalloc(100)
    assert slab.ksize(kva) == 128


def test_kfree_unknown_rejected():
    _phys, slab = make_slab()
    with pytest.raises(AllocatorError):
        slab.kfree(0x1234000)


def test_double_free_rejected():
    _phys, slab = make_slab()
    kva = slab.kmalloc(64)
    slab.kfree(kva)
    with pytest.raises(AllocatorError):
        slab.kfree(kva)


def test_freelist_pointers_live_on_the_page():
    """SLUB-style metadata: free objects hold the next free object's
    KVA *in page memory* -- the exposed OS metadata of Figure 1(b)."""
    phys, slab = make_slab()
    first = slab.kmalloc(512)
    page_base = (first // PAGE_SIZE) * PAGE_SIZE
    # the next two free 512-slots hold freelist links (KVAs)
    links = [phys.read_u64(page_base + i * 512) for i in range(8)]
    on_page_links = [v for v in links
                     if v and page_base <= v < page_base + PAGE_SIZE]
    assert on_page_links, "expected freelist KVAs on the slab page"


def test_kfree_writes_link_into_freed_object():
    phys, slab = make_slab()
    a = slab.kmalloc(512)
    b = slab.kmalloc(512)
    slab.kfree(a)
    slab.kfree(b)
    # b now heads the freelist and links to a
    assert phys.read_u64(b) == a


def test_freed_object_reused_lifo():
    _phys, slab = make_slab()
    kva = slab.kmalloc(256)
    slab.kfree(kva)
    assert slab.kmalloc(256) == kva


def test_allocation_scrubs_freelist_word():
    phys, slab = make_slab()
    a = slab.kmalloc(512)
    slab.kfree(a)
    again = slab.kmalloc(512)
    assert phys.read_u64(again) == 0


def test_full_slab_spills_to_new_page():
    _phys, slab = make_slab()
    kvas = [slab.kmalloc(2048) for _ in range(3)]  # 2 per page
    pages = {kva // PAGE_SIZE for kva in kvas}
    assert len(pages) == 2


def test_live_objects_on_pfn():
    _phys, slab = make_slab()
    a = slab.kmalloc(1024)
    b = slab.kmalloc(1024)
    pfn = a // PAGE_SIZE
    objs = slab.live_objects_on_pfn(pfn)
    assert (a, 1024) in objs and (b, 1024) in objs


def test_empty_surplus_slab_returns_to_buddy():
    _phys, slab = make_slab()
    first_batch = [slab.kmalloc(1024) for _ in range(8)]  # two slabs
    for kva in first_batch:
        slab.kfree(kva)
    assert slab.nr_live_objects == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(KMALLOC_SIZES), min_size=1, max_size=60))
def test_property_objects_never_overlap(sizes):
    """Live kmalloc objects are always disjoint byte ranges."""
    _phys, slab = make_slab()
    live: list[tuple[int, int]] = []
    for i, size in enumerate(sizes):
        kva = slab.kmalloc(size)
        for other_kva, other_size in live:
            assert kva + size <= other_kva or other_kva + other_size <= kva
        live.append((kva, size))
        if i % 4 == 3:
            old = live.pop(0)
            slab.kfree(old[0])
