"""SPADE end-to-end: Table 2 reproduction, validation, traces, limits."""

from repro.core.spade import Spade, Table2Stats
from repro.core.spade.report import format_finding_trace, format_table2
from repro.corpus.generate import SourceTree
from repro.corpus.structs_db import SHARED_HEADERS


def test_table2_reproduced_exactly(corpus, spade_results):
    """Every row of the paper's Table 2."""
    _spade, findings = spade_results
    stats = Table2Stats.from_findings(findings)
    assert stats.total == (1019, 447)
    assert stats.callbacks_exposed == (156, 57)
    assert stats.skb_shared_info_mapped == (464, 232)
    assert stats.callbacks_exposed_directly == (54, 28)
    assert stats.private_data_mapped == (19, 7)
    assert stats.stack_mapped == (3, 3)
    assert stats.type_c == (344, 227)
    assert stats.build_skb_used == (46, 40)
    assert stats.vulnerable[0] == 742


def test_validation_perfect_on_generated_corpus(corpus, spade_results):
    """Precision/recall against the ground-truth manifest."""
    spade, findings = spade_results
    _tree, manifest = corpus
    result = spade.validate(findings, manifest)
    assert result.precision == 1.0
    assert result.recall == 1.0


def test_no_parse_errors(spade_results):
    spade, _findings = spade_results
    assert spade.index.parse_errors == {}


def test_percentages_match_paper(spade_results):
    _spade, findings = spade_results
    stats = Table2Stats.from_findings(findings)
    total_calls, total_files = stats.total
    assert round(100 * stats.callbacks_exposed[0] / total_calls, 1) == 15.3
    assert round(100 * stats.callbacks_exposed[1] / total_files, 1) == 12.8
    assert round(100 * stats.skb_shared_info_mapped[0] / total_calls,
                 1) == 45.5
    assert round(100 * stats.skb_shared_info_mapped[1] / total_files,
                 1) == 51.9
    assert round(100 * stats.vulnerable[0] / total_calls, 1) == 72.8


def test_nvme_fc_figure2_trace(spade_results):
    """The Figure 2 example: 1 exposed + 931 spoofable, with the
    recursive declaration/assignment trace."""
    _spade, findings = spade_results
    nvme = [f for f in findings if f.file == "drivers/nvme/host/fc.c"]
    assert len(nvme) == 2
    direct = next(f for f in nvme if f.mapped_expr == "& op -> rsp_iu")
    assert direct.direct_callbacks == 1
    assert direct.direct_callback_names == ["fcp_req.done"]
    assert direct.spoofable_callbacks == 931
    text = format_finding_trace(direct)
    assert "EXPOSED 1 callback" in text
    assert "SPOOFABLE 931 callback" in text
    assert "nvme_fc_fcp_op" in text
    # the helper-routed call exercises caller backtracking
    routed = next(f for f in nvme if f.mapped_expr == "buf")
    assert routed.spoofable_callbacks == 931
    assert any("caller nvme_fc_init_iod() passes" in line
               for line in routed.trace)


def test_table2_rendering(spade_results):
    _spade, findings = spade_results
    text = format_table2(Table2Stats.from_findings(findings))
    assert "156 (15.3%)" in text
    assert "57 (12.8%)" in text
    assert "464 (45.5%)" in text
    assert "742 dma-map calls (72.8%)" in text


def _mini_tree(extra: dict[str, str]) -> SourceTree:
    tree = SourceTree()
    for path, content in SHARED_HEADERS.items():
        tree.add(path, content)
    for path, content in extra.items():
        tree.add(path, content)
    return tree


def test_stack_buffer_detected():
    tree = _mini_tree({"drivers/x/x.c": """
struct x_dev { struct device *dma_dev; };
static int f(struct x_dev *d)
{
    u8 cmd[32];
    dma_addr_t a;
    a = dma_map_single(d->dma_dev, cmd, 32, DMA_TO_DEVICE);
    return 0;
}
"""})
    findings = Spade(tree).analyze()
    assert len(findings) == 1
    assert findings[0].exposures == {"stack"}


def test_benign_kmalloc_not_flagged():
    tree = _mini_tree({"drivers/x/x.c": """
struct x_dev { struct device *dma_dev; };
static int f(struct x_dev *d)
{
    u8 *buf;
    dma_addr_t a;
    buf = kmalloc(256, GFP_KERNEL);
    a = dma_map_single(d->dma_dev, buf, 256, DMA_TO_DEVICE);
    return 0;
}
"""})
    findings = Spade(tree).analyze()
    assert not findings[0].vulnerable


def test_limitation_indirect_flow_is_false_negative():
    """Section 4.3: 'SPADE ... may fail to follow a mapped variable due
    to complex code constructs such as function pointers, macros, and
    others, potentially resulting in a false-negative result.'"""
    tree = _mini_tree({"drivers/x/x.c": """
struct x_cmd {
    void (*done)(struct x_cmd *cmd);
    u8 rsp[64];
};
struct x_dev {
    struct device *dma_dev;
    void *(*get_buf)(struct x_dev *d);
};
static int f(struct x_dev *d)
{
    u8 *buf;
    dma_addr_t a;
    buf = d->get_buf(d);
    a = dma_map_single(d->dma_dev, buf, 64, DMA_TO_DEVICE);
    return 0;
}
"""})
    findings = Spade(tree).analyze()
    # the buffer really is &cmd->rsp at runtime, but the indirection
    # defeats static backtracking: reported clean + an explicit note
    assert not findings[0].vulnerable
    assert any("false negative" in line for line in findings[0].trace)


def test_recursion_depth_bounded():
    chain = "\n".join(
        f"""
static dma_addr_t hop{i}(struct x_dev *d, void *buf)
{{
    return hop{i + 1}(d, buf);
}}
""" for i in range(6))
    tree = _mini_tree({"drivers/x/x.c": f"""
struct x_dev {{ struct device *dma_dev; }};
static dma_addr_t hop6(struct x_dev *d, void *buf)
{{
    dma_addr_t a;
    a = dma_map_single(d->dma_dev, buf, 64, DMA_TO_DEVICE);
    return a;
}}
{chain}
struct x_cmd {{
    void (*done)(struct x_cmd *c);
    u8 rsp[64];
}};
static int entry(struct x_dev *d, struct x_cmd *c)
{{
    dma_addr_t a;
    a = hop0(d, &c->rsp);
    return 0;
}}
"""})
    findings = Spade(tree, max_depth=3).analyze()
    assert any("recursion limit" in line
               for f in findings for line in f.trace)


def test_deep_chain_resolved_with_enough_depth():
    tree = _mini_tree({"drivers/x/x.c": """
struct x_cmd {
    void (*done)(struct x_cmd *c);
    u8 rsp[64];
};
struct x_dev { struct device *dma_dev; };
static dma_addr_t inner(struct x_dev *d, void *buf)
{
    dma_addr_t a;
    a = dma_map_single(d->dma_dev, buf, 64, DMA_TO_DEVICE);
    return a;
}
static dma_addr_t middle(struct x_dev *d, void *buf)
{
    return inner(d, buf);
}
static int entry(struct x_dev *d, struct x_cmd *c)
{
    dma_addr_t a;
    a = middle(d, &c->rsp);
    return 0;
}
"""})
    findings = Spade(tree, max_depth=5).analyze()
    assert findings[0].exposures >= {"callback_direct"}
    assert findings[0].direct_callbacks == 1
