"""SPADE coverage of dma_map_sg and dma_map_page call sites."""

from repro.core.spade import Spade
from repro.corpus.generate import SourceTree
from repro.corpus.structs_db import SHARED_HEADERS


def _tree(extra: dict[str, str]) -> SourceTree:
    tree = SourceTree()
    for path, content in SHARED_HEADERS.items():
        tree.add(path, content)
    for path, content in extra.items():
        tree.add(path, content)
    return tree


def test_sg_entries_classified():
    """A struct-embedded buffer fed through sg_set_buf is detected."""
    tree = _tree({"drivers/x/x.c": """
struct x_cmd {
    void (*done)(struct x_cmd *cmd);
    u8 sense[96];
};
struct x_dev { struct device *dma_dev; };
static int f(struct x_dev *d, struct x_cmd *cmd,
             struct scatterlist *sg)
{
    int n;
    sg_set_buf(sg, &cmd->sense, 96);
    n = dma_map_sg(d->dma_dev, sg, 1, DMA_FROM_DEVICE);
    return n;
}
"""})
    findings = Spade(tree).analyze()
    assert len(findings) == 1
    assert "callback_direct" in findings[0].exposures
    assert findings[0].direct_callbacks == 1


def test_sg_populated_elsewhere_is_false_negative():
    tree = _tree({"drivers/x/x.c": """
struct x_dev { struct device *dma_dev; };
static int f(struct x_dev *d, struct scatterlist *sg)
{
    int n;
    n = dma_map_sg(d->dma_dev, sg, 4, DMA_TO_DEVICE);
    return n;
}
"""})
    findings = Spade(tree).analyze()
    assert not findings[0].vulnerable
    assert any("false negative" in line for line in findings[0].trace)


def test_sg_skb_buffer_detected():
    tree = _tree({"drivers/x/x.c": """
struct x_dev { struct device *dma_dev; };
static int f(struct x_dev *d, struct sk_buff *skb,
             struct scatterlist *sg)
{
    int n;
    sg_set_buf(sg, skb->data, skb->len);
    n = dma_map_sg(d->dma_dev, sg, 1, DMA_TO_DEVICE);
    return n;
}
"""})
    findings = Spade(tree).analyze()
    assert "skb_shared_info" in findings[0].exposures


def test_map_page_call_site_counted():
    """dma_map_page sites are analyzed (and honestly reported as hard
    to classify when only a struct page is visible)."""
    tree = _tree({"drivers/x/x.c": """
struct x_dev { struct device *dma_dev; };
static int f(struct x_dev *d, struct page *pg)
{
    dma_addr_t a;
    a = dma_map_page(d->dma_dev, pg, 0, 4096, DMA_FROM_DEVICE);
    return 0;
}
"""})
    findings = Spade(tree).analyze()
    assert len(findings) == 1
    assert findings[0].mapped_expr == "pg"


def test_table2_totals_unaffected_by_sg_support(spade_results):
    _spade, findings = spade_results
    from repro.core.spade import Table2Stats
    assert Table2Stats.from_findings(findings).total == (1019, 447)
