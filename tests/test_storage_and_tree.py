"""Storage workload + on-disk SourceTree round trips."""

from repro.core.dkasan import DKasan
from repro.corpus import CorpusGenerator
from repro.corpus.generate import SourceTree
from repro.sim.kernel import Kernel
from repro.sim.workload import run_storage_workload


def test_storage_workload_under_dkasan():
    """The nvme_fc-style command loop produces type (a)/(d) churn."""
    dkasan = DKasan(256 << 20)
    kernel = Kernel(seed=13, phys_mb=256, sink=dkasan)
    stats = run_storage_workload(kernel, commands=48)
    assert stats.commands == 48
    counts = dkasan.summary_counts()
    assert counts["map-after-alloc"] > 0
    assert counts["alloc-after-map"] > 0
    # the embedded response buffers expose their command structs
    assert any(e.site.function == "nvme_fc_init_iod"
               for e in dkasan.events_of("map-after-alloc"))


def test_storage_workload_cleans_up():
    kernel = Kernel(seed=13, phys_mb=256)
    before = kernel.slab.nr_live_objects
    run_storage_workload(kernel, commands=24)
    assert kernel.slab.nr_live_objects == before
    assert kernel.dma.registry.nr_live == 0


def test_source_tree_disk_roundtrip(tmp_path):
    tree, _manifest = CorpusGenerator(seed=7).generate()
    tree.write_to_dir(str(tmp_path))
    loaded = SourceTree.from_dir(str(tmp_path))
    assert loaded.files == tree.files


def test_from_dir_skips_non_c(tmp_path):
    (tmp_path / "x.c").write_text("int a;")
    (tmp_path / "notes.md").write_text("# hi")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "y.h").write_text("struct s { int x; };")
    loaded = SourceTree.from_dir(str(tmp_path))
    assert set(loaded.files) == {"x.c", "sub/y.h"}


def test_spade_over_disk_tree_matches(tmp_path):
    """Full round trip: generate -> dump -> reload -> analyze."""
    from repro.core.spade import Spade, Table2Stats
    tree, _ = CorpusGenerator(seed=7).generate()
    tree.write_to_dir(str(tmp_path))
    loaded = SourceTree.from_dir(str(tmp_path))
    stats = Table2Stats.from_findings(Spade(loaded).analyze())
    assert stats.total == (1019, 447)
    assert stats.vulnerable[0] == 742


def test_cli_audit_real_tree(tmp_path, capsys):
    from repro.cli import main
    tree, _ = CorpusGenerator(seed=7).generate()
    tree.write_to_dir(str(tmp_path))
    assert main(["audit", "--tree", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Total dma-map calls" in out
    assert "validation" not in out  # no ground truth for real trees
