"""repro.trace unit tests: ring, spans, aggregates, exporters.

Everything here drives the recorder directly (no kernel); the
cross-layer behaviour lives in ``test_trace_integration.py``.
"""

import io
import json

import pytest

from repro import trace
from repro.errors import TraceError
from repro.sim.clock import SimClock
from repro.trace import (CATEGORIES, Histogram, TraceEvent, TraceRecorder,
                         chrome_trace, derive_invalidation_windows,
                         event_counts, load_jsonl, summary_record,
                         write_jsonl)


@pytest.fixture(autouse=True)
def _recorder_slot_clean():
    """No test may leak an installed recorder into the next one."""
    assert trace.active() is None
    yield
    trace.uninstall()


# -- ring buffer -----------------------------------------------------------------


def test_ring_drops_oldest_and_counts():
    recorder = TraceRecorder(capacity=8)
    for i in range(20):
        recorder.emit("dma", "map", index=i)
    assert recorder.nr_events == 8
    assert recorder.nr_emitted == 20
    assert recorder.dropped == 12
    # the *most recent* history survives, oldest first
    assert [e.args["index"] for e in recorder.events] == list(range(12, 20))
    assert [e.seq for e in recorder.events] == list(range(12, 20))
    assert recorder.last_seq() == 19
    assert [e.seq for e in recorder.tail(3)] == [17, 18, 19]
    assert recorder.tail(0) == []


def test_bad_capacity_rejected():
    with pytest.raises(TraceError, match="capacity"):
        TraceRecorder(capacity=0)
    with pytest.raises(TraceError, match="capacity"):
        TraceRecorder(capacity=-5)


def test_unknown_category_rejected_at_construction():
    with pytest.raises(TraceError, match="unknown trace categories"):
        TraceRecorder(categories=("dma", "gpu"))


def test_unknown_category_rejected_at_emit():
    recorder = TraceRecorder(categories=("dma",))
    with pytest.raises(TraceError, match="unknown trace category"):
        recorder.emit("gpu", "map")


def test_events_stamped_from_bound_clock():
    clock = SimClock()
    recorder = TraceRecorder()
    assert recorder.now_us == 0.0  # unbound: time origin
    recorder.bind_clock(clock)
    clock.advance_us(125.0)
    event = recorder.emit("sim", "tick")
    assert event.ts_us == 125.0


# -- category filtering ----------------------------------------------------------


def test_category_filter_drops_events_counters_histograms():
    recorder = TraceRecorder(categories=("iommu",))
    assert recorder.wants("iommu") and not recorder.wants("dma")
    assert recorder.emit("dma", "map") is None
    assert recorder.emit("iommu", "fq_defer") is not None
    recorder.count("dma", "maps")
    recorder.count("iommu", "flushes")
    recorder.observe("dma", "lifetime", 3.0)
    assert recorder.nr_events == 1
    assert recorder.counters == {("iommu", "flushes"): 1}
    assert recorder.histograms == {}


def test_unfiltered_recorder_accepts_every_category():
    recorder = TraceRecorder()
    for category in CATEGORIES:
        assert recorder.emit(category, "x") is not None
    assert recorder.nr_events == len(CATEGORIES)


# -- spans ------------------------------------------------------------------------


def test_span_nesting_emits_balanced_begin_end():
    clock = SimClock()
    recorder = TraceRecorder(clock=clock)
    outer = recorder.begin("attack", "outer")
    clock.advance_us(10.0)
    inner = recorder.begin("attack", "inner")
    clock.advance_us(5.0)
    recorder.end(inner)
    recorder.end(outer)
    phases = [(e.phase, e.name) for e in recorder.events]
    assert phases == [("B", "outer"), ("B", "inner"),
                      ("E", "inner"), ("E", "outer")]
    assert recorder.events[2].args["dur_us"] == 5.0
    assert recorder.events[3].args["dur_us"] == 15.0
    assert recorder.open_spans == 0


def test_span_mismatched_close_raises():
    recorder = TraceRecorder()
    outer = recorder.begin("attack", "outer")
    recorder.begin("attack", "inner")
    with pytest.raises(TraceError, match="mismatched span close"):
        recorder.end(outer)


def test_span_double_close_raises():
    recorder = TraceRecorder()
    span = recorder.begin("attack", "s")
    recorder.end(span)
    with pytest.raises(TraceError, match="closed twice"):
        recorder.end(span)


def test_span_close_with_none_open_raises():
    recorder = TraceRecorder()
    span = recorder.begin("attack", "s")
    recorder.end(span)
    other = recorder.begin("attack", "t")
    recorder.end(other)
    span.closed = False
    with pytest.raises(TraceError, match="no span open"):
        recorder.end(span)


def test_span_context_manager():
    recorder = TraceRecorder()
    with recorder.span("net", "reap", cpu=0) as span:
        assert span is not None and not span.closed
    assert [e.phase for e in recorder.events] == ["B", "E"]


def test_filtered_span_is_noop():
    recorder = TraceRecorder(categories=("dma",))
    with recorder.span("attack", "s") as span:
        assert span is None
    assert recorder.nr_events == 0


# -- aggregates -------------------------------------------------------------------


def test_histogram_pow2_buckets():
    hist = Histogram()
    for value in (0, 0.5, 1, 2, 3, 1024):
        hist.observe(value)
    # bucket i counts [2**(i-1), 2**i); <1 lands in bucket 0
    assert hist.buckets == {0: 2, 1: 1, 2: 2, 11: 1}
    assert hist.count == 6
    assert hist.min == 0 and hist.max == 1024
    assert hist.mean == pytest.approx(1030.5 / 6)


def test_counters_accumulate():
    recorder = TraceRecorder()
    recorder.count("iommu", "iotlb_hit")
    recorder.count("iommu", "iotlb_hit", 4)
    recorder.count("iommu", "iotlb_miss")
    assert recorder.counters[("iommu", "iotlb_hit")] == 5
    assert recorder.counters[("iommu", "iotlb_miss")] == 1
    assert recorder.nr_events == 0  # counters stay off the ring


# -- module-level no-op guard -----------------------------------------------------


def test_disabled_by_default_hooks_are_noops():
    assert trace.active() is None
    assert trace.enabled("dma") is False
    assert trace.emit("dma", "map", iova=1) is None
    assert trace.last_seq() is None
    trace.count("dma", "maps")
    trace.observe("dma", "lifetime", 1.0)
    trace.bind_clock(SimClock())
    with trace.span("attack", "s") as span:
        assert span is None


def test_install_uninstall_cycle():
    recorder = trace.install(TraceRecorder())
    assert trace.active() is recorder
    assert trace.enabled("dma") is True
    trace.emit("dma", "map", iova=7)
    assert recorder.nr_events == 1
    assert trace.uninstall() is recorder
    assert trace.active() is None
    assert trace.uninstall() is None


def test_double_install_raises():
    trace.install(TraceRecorder())
    with pytest.raises(TraceError, match="already installed"):
        trace.install(TraceRecorder())


def test_session_scopes_recorder():
    with trace.session(categories=("sim",)) as recorder:
        assert trace.active() is recorder
        assert trace.enabled("sim") and not trace.enabled("dma")
    assert trace.active() is None


def test_importing_trace_has_no_side_effects():
    import importlib

    import repro.trace as module
    importlib.reload(module)
    assert module.active() is None


# -- exporters --------------------------------------------------------------------


def _sample_recorder() -> TraceRecorder:
    clock = SimClock()
    recorder = TraceRecorder(clock=clock)
    recorder.emit("dma", "map", iova=0x1000, size=512)
    clock.advance_us(3.0)
    with recorder.span("attack", "phase", rank=0):
        clock.advance_us(2.0)
        recorder.emit("iommu", "fq_defer", domain=1, iova_pfn=2)
    recorder.count("dma", "maps", 2)
    recorder.observe("dma", "lifetime", 5.0)
    return recorder


def test_jsonl_roundtrip(tmp_path):
    recorder = _sample_recorder()
    path = tmp_path / "trace.jsonl"
    nr = trace.dump_jsonl(recorder, str(path))
    assert nr == recorder.nr_events
    events, summary = load_jsonl(str(path))
    assert events == recorder.events
    assert summary["nr_events"] == recorder.nr_events
    assert summary["counters"] == {"dma/maps": 2}
    assert summary["histograms"]["dma/lifetime"]["count"] == 1


def test_jsonl_lines_are_sorted_json():
    recorder = _sample_recorder()
    stream = io.StringIO()
    write_jsonl(recorder, stream)
    for line in stream.getvalue().splitlines():
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True)


def test_summary_record_shape():
    summary = summary_record(_sample_recorder())
    assert summary["type"] == "summary"
    assert summary["nr_emitted"] == 4  # map + B + fq_defer + E
    assert summary["dropped"] == 0


def test_chrome_trace_schema():
    recorder = _sample_recorder()
    doc = chrome_trace(recorder.events, counters=recorder.counters)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    rows = doc["traceEvents"]
    metadata = [r for r in rows if r["ph"] == "M"]
    names = {r["args"]["name"] for r in metadata
             if r["name"] == "thread_name"}
    assert {"dma", "iommu", "attack"} <= names
    instants = [r for r in rows if r["ph"] == "i"]
    assert all(r["s"] == "t" for r in instants)
    spans = [r for r in rows if r["ph"] in ("B", "E")]
    assert [r["ph"] for r in spans] == ["B", "E"]
    counters = [r for r in rows if r["ph"] == "C"]
    assert counters and counters[0]["name"] == "maps"
    assert counters[0]["cat"] == "dma"
    assert counters[0]["args"] == {"value": 2}
    # each category renders on its own tid, stable within the doc
    tid_of = {r["args"]["name"]: r["tid"] for r in metadata
              if r["name"] == "thread_name"}
    for row in rows:
        if row["ph"] == "i":
            assert row["tid"] == tid_of[row["cat"]]


def test_event_json_roundtrip():
    event = TraceEvent(3, 1.5, "net", "rx_post", "i", {"slot": 2})
    assert TraceEvent.from_json(event.to_json()) == event


# -- analysis ---------------------------------------------------------------------


def _iommu_event(seq, ts, name, **args):
    return TraceEvent(seq, ts, "iommu", name, "i", args)


def test_derive_windows_pairs_defer_with_next_drain():
    events = [
        _iommu_event(0, 100.0, "fq_defer"),
        _iommu_event(1, 400.0, "fq_defer"),
        _iommu_event(2, 1000.0, "fq_drain"),
        _iommu_event(3, 1500.0, "fq_defer"),
    ]
    windows = derive_invalidation_windows(events)
    assert windows.windows_us == [900.0, 600.0]
    assert windows.nr_unpaired == 1
    assert windows.nr_sync == 0
    assert windows.max_us == 900.0
    assert windows.mean_us == 750.0


def test_derive_windows_counts_sync_as_zero_width():
    events = [_iommu_event(0, 5.0, "inv_sync"),
              _iommu_event(1, 9.0, "inv_sync")]
    windows = derive_invalidation_windows(events)
    assert windows.nr_sync == 2
    assert windows.windows_us == [0.0, 0.0]
    assert windows.max_ms == 0.0


def test_event_counts():
    events = [_iommu_event(0, 1.0, "fq_defer"),
              _iommu_event(1, 2.0, "fq_defer"),
              TraceEvent(2, 3.0, "dma", "map", "i", {})]
    counts = event_counts(events)
    assert counts[("iommu", "fq_defer")] == 2
    assert counts[("dma", "map")] == 1
