"""Flight recorder across the stack: kernel workloads, D-KASAN
cross-references, trace-derived Figure-6 windows, campaign capture,
and the ``repro-dma trace`` CLI."""

import io
import json

import pytest

from repro import trace
from repro.cli import main
from repro.sim.kernel import Kernel
from repro.trace import derive_invalidation_windows, event_counts


@pytest.fixture(autouse=True)
def _recorder_slot_clean():
    assert trace.active() is None
    yield
    trace.uninstall()


def _traced_workload(seed: int, *, rounds: int = 5, **session_kwargs):
    from repro.sim.workload import run_compile_and_ping

    with trace.session(**session_kwargs) as recorder:
        kernel = Kernel(seed=seed, phys_mb=256, boot_jitter_pages=0,
                        boot_jitter_blocks=0)
        nic = kernel.add_nic("eth0")
        run_compile_and_ping(kernel, nic, rounds=rounds)
    return recorder


# -- cross-layer coverage ---------------------------------------------------------


def test_workload_emits_across_categories():
    recorder = _traced_workload(7)
    counts = event_counts(recorder.events)
    categories = {cat for cat, _name in counts}
    assert {"sim", "dma", "iommu", "net", "mem"} <= categories
    assert counts[("sim", "boot")] == 1
    for key in (("dma", "map"), ("dma", "unmap"), ("net", "rx_post"),
                ("net", "skb_alloc"), ("mem", "kmalloc"),
                ("iommu", "fq_defer")):
        assert counts[key] > 0, key
    # nothing dropped at default capacity, so the off-ring counter
    # must agree with the on-ring event count
    assert recorder.dropped == 0
    assert recorder.counters[("dma", "maps")] == counts[("dma", "map")]
    assert recorder.histograms[("dma", "mapping_lifetime_us")].count == \
        counts[("dma", "unmap")]


def test_boot_event_carries_kernel_identity():
    with trace.session(categories=("sim",)) as recorder:
        Kernel(seed=11, boot_index=3, phys_mb=256,
               iommu_mode="strict", boot_jitter_pages=0,
               boot_jitter_blocks=0)
    (boot,) = recorder.events
    assert boot.name == "boot"
    assert boot.args["seed"] == 11
    assert boot.args["boot_index"] == 3
    assert boot.args["iommu_mode"] == "strict"


def test_disabled_tracing_workload_has_no_recorder():
    from repro.sim.workload import run_compile_and_ping

    kernel = Kernel(seed=7, phys_mb=256, boot_jitter_pages=0,
                    boot_jitter_blocks=0)
    nic = kernel.add_nic("eth0")
    run_compile_and_ping(kernel, nic, rounds=3)
    assert trace.active() is None


# -- determinism -------------------------------------------------------------------


def test_same_seed_gives_byte_identical_jsonl():
    streams = []
    for _ in range(2):
        recorder = _traced_workload(13, rounds=4)
        stream = io.StringIO()
        trace.write_jsonl(recorder, stream)
        streams.append(stream.getvalue())
    assert streams[0] == streams[1]
    assert streams[0]  # non-trivial: events were captured


def test_different_seed_gives_different_stream():
    first = io.StringIO()
    trace.write_jsonl(_traced_workload(13, rounds=4), first)
    second = io.StringIO()
    trace.write_jsonl(_traced_workload(14, rounds=4), second)
    assert first.getvalue() != second.getvalue()


# -- D-KASAN cross-reference -------------------------------------------------------


def test_dkasan_events_cross_reference_trigger_tracepoint():
    from repro.core.dkasan import DKasan
    from repro.sim.workload import run_compile_and_ping

    with trace.session() as recorder:
        dkasan = DKasan(256 << 20)
        kernel = Kernel(seed=9, phys_mb=256, sink=dkasan,
                        boot_jitter_pages=0, boot_jitter_blocks=0)
        nic = kernel.add_nic("eth0")
        run_compile_and_ping(kernel, nic, rounds=8)
    by_seq = {e.seq: e for e in recorder.events}
    dkasan_events = [e for e in recorder.events if e.category == "dkasan"]
    assert dkasan_events, "workload produced no D-KASAN findings"
    assert len(dkasan_events) == len(dkasan.events)
    for event in dkasan_events:
        trigger_seq = event.args["trigger_seq"]
        assert trigger_seq is not None and trigger_seq < event.seq
        trigger = by_seq.get(trigger_seq)
        assert trigger is not None, "trigger event fell off the ring"
        # findings are raised while handling allocator / DMA / device
        # activity (or chained off an earlier finding from the same
        # operation) -- never out of the attack machinery itself
        assert trigger.category != "attack"


# -- Figure-6 window from the trace ------------------------------------------------


def test_trace_recomputes_deferred_window():
    with trace.session(categories=("iommu", "dma")) as recorder:
        kernel = Kernel(seed=3, phys_mb=128, iommu_mode="deferred",
                        boot_jitter_pages=0, boot_jitter_blocks=0)
        kernel.iommu.attach_device("dev0")
        kva = kernel.slab.kmalloc(512)
        iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                         "DMA_FROM_DEVICE")
        kernel.dma.dma_unmap_single("dev0", iova, 512,
                                    "DMA_FROM_DEVICE")
        kernel.advance_time_ms(10.5)  # one full flush period
    windows = derive_invalidation_windows(recorder.events)
    assert windows.nr_windows == 1
    assert windows.nr_unpaired == 0
    # the unmap happened within the first flush period, so the stale
    # window closes at the first 10 ms timer tick
    assert 5.0 <= windows.max_ms <= 10.0


def test_trace_strict_mode_shows_only_sync_invalidations():
    with trace.session(categories=("iommu",)) as recorder:
        kernel = Kernel(seed=3, phys_mb=128, iommu_mode="strict",
                        boot_jitter_pages=0, boot_jitter_blocks=0)
        kernel.iommu.attach_device("dev0")
        kva = kernel.slab.kmalloc(512)
        iova = kernel.dma.dma_map_single("dev0", kva, 512,
                                         "DMA_TO_DEVICE")
        kernel.dma.dma_unmap_single("dev0", iova, 512, "DMA_TO_DEVICE")
    windows = derive_invalidation_windows(recorder.events)
    assert windows.nr_sync >= 1
    assert windows.max_ms == 0.0
    counts = event_counts(recorder.events)
    assert counts[("iommu", "fq_defer")] == 0


# -- campaign capture --------------------------------------------------------------


def test_campaign_disagreements_carry_trace_tail():
    from repro.campaign import CorpusMutator, run_differential

    tree, manifest = CorpusMutator(2021, scale=0.1).base()
    result = run_differential(tree, manifest, seed=11, trace_events=16)
    assert trace.active() is None  # the oracle cleans up its recorder
    assert result.disagreements  # base corpus carries dkasan-miss sites
    assert 0 < len(result.trace_tail) <= 16
    for record in result.trace_tail:
        assert record["cat"] in ("dma", "iommu", "dkasan")
    json.dumps(result.trace_tail)  # JSONL-safe


def test_campaign_tracing_off_by_default():
    from repro.campaign import CorpusMutator, run_differential

    tree, manifest = CorpusMutator(2021, scale=0.1).base()
    result = run_differential(tree, manifest, seed=11)
    assert result.trace_tail == []


def test_result_record_surfaces_trace_tail():
    from repro.campaign.oracle import (DetectorScore, DifferentialResult)
    from repro.campaign.results import result_record

    tail = [{"seq": 1, "ts_us": 2.0, "cat": "dma", "name": "map",
             "ph": "i", "args": {}}]
    result = DifferentialResult(5, 10, DetectorScore(), DetectorScore(),
                                [], trace_tail=tail)
    record = result_record(result, [])
    assert record["trace_tail"] == tail


# -- CLI --------------------------------------------------------------------------


def test_cli_trace_compile_ping_exports(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    code = main(["trace", "--workload", "compile-ping", "--rounds", "3",
                 "--categories", "iommu,dma",
                 "--output", str(jsonl), "--chrome", str(chrome),
                 "--summary", "--timeline", "--last", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace:" in out and "invalidation windows" in out
    events, summary = trace.load_jsonl(str(jsonl))
    assert events and summary is not None
    assert {e.category for e in events} <= {"iommu", "dma"}
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]


def test_cli_trace_unknown_category_exits_2(capsys):
    code = main(["trace", "--categories", "dma,warp"])
    assert code == 2
    assert "unknown trace categories" in capsys.readouterr().err


def test_cli_trace_empty_capture_exits_1(capsys):
    # the attack category never fires during a plain workload
    code = main(["trace", "--workload", "compile-ping", "--rounds", "2",
                 "--categories", "attack"])
    assert code == 1
    assert "no events captured" in capsys.readouterr().err


def test_cli_trace_ringflood_chrome_and_window(tmp_path, capsys):
    jsonl = tmp_path / "rf.jsonl"
    code = main(["trace", "--workload", "ringflood", "--seed", "5",
                 "--profile-boots", "4", "--categories", "iommu,dma,attack",
                 "--output", str(jsonl), "--summary"])
    assert code == 0
    events, _summary = trace.load_jsonl(str(jsonl))
    counts = event_counts(events)
    assert counts[("attack", "ringflood:kaslr-break")] == 2  # B + E
    windows = derive_invalidation_windows(events)
    # the victim runs in deferred mode: unmaps enter the flush queue
    # and no synchronous invalidations ever appear
    assert windows.nr_windows + windows.nr_unpaired >= 1
    assert windows.nr_sync == 0
