"""VulnType taxonomy, runtime classification, attribute tracking."""

from repro.core.attributes import VulnerabilityAttributes
from repro.core.vulns import VulnType, classify_page_exposures


def test_vuln_types_cover_figure1():
    assert {t.value for t in VulnType} == {"A", "B", "C", "D"}
    assert VulnType.DRIVER_METADATA.blamed_on == "driver"
    for t in (VulnType.OS_METADATA, VulnType.MULTIPLE_IOVA,
              VulnType.RANDOM_COLOCATION):
        assert t.blamed_on == "OS"
    for t in VulnType:
        assert t.description


def test_classify_detects_type_c(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    a = k.page_frag.alloc(1024)
    b = k.page_frag.alloc(1024)
    k.dma.dma_map_single("dev0", a, 1024, "DMA_FROM_DEVICE")
    k.dma.dma_map_single("dev0", b, 1024, "DMA_TO_DEVICE")
    pfn = k.addr_space.pfn_of_kva(a)
    vulns = classify_page_exposures(pfn, k.dma.registry, k.slab)
    types = {v.vuln_type for v in vulns}
    assert VulnType.MULTIPLE_IOVA in types
    multi = next(v for v in vulns
                 if v.vuln_type is VulnType.MULTIPLE_IOVA)
    assert "READ" in multi.perm and "WRITE" in multi.perm


def test_classify_detects_type_d(bare_kernel):
    k = bare_kernel
    k.iommu.attach_device("dev0")
    io_buf = k.slab.kmalloc(512)
    bystander = k.slab.kmalloc(512)  # same page, not mapped
    k.dma.dma_map_single("dev0", io_buf, 512, "DMA_FROM_DEVICE")
    pfn = k.addr_space.pfn_of_kva(io_buf)
    vulns = classify_page_exposures(pfn, k.dma.registry, k.slab)
    random_coloc = [v for v in vulns
                    if v.vuln_type is VulnType.RANDOM_COLOCATION]
    assert random_coloc
    assert str(random_coloc[0])  # renders


def test_classify_unmapped_page_empty(bare_kernel):
    k = bare_kernel
    buf = k.slab.kmalloc(512)
    pfn = k.addr_space.pfn_of_kva(buf)
    assert classify_page_exposures(pfn, k.dma.registry, k.slab) == []


def test_attributes_start_incomplete():
    attrs = VulnerabilityAttributes()
    assert not attrs.complete
    assert attrs.missing() == ["malicious buffer KVA",
                               "callback write access", "time window"]


def test_attributes_complete_after_all_three():
    attrs = VulnerabilityAttributes()
    attrs.record_kva(0xFFFF_8880_0000_1000, "frag leak")
    assert not attrs.complete
    attrs.record_callback_access("shared_info offset known")
    assert not attrs.complete
    attrs.record_window("deferred IOTLB")
    assert attrs.complete
    assert attrs.missing() == []


def test_attributes_summary_renders():
    attrs = VulnerabilityAttributes()
    attrs.record_kva(0x1234, "test")
    text = attrs.summary()
    assert "OBTAINED" in text and "missing" in text
