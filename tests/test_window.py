"""Time-window machinery: Figure 7's paths and the write windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attacks.device import AttackerKnowledge, MaliciousDevice
from repro.core.attacks.window import (BufferWriteWindow, RingNeighbor,
                                       open_rx_window, ring_window)
from repro.errors import AttackFailed
from repro.net.proto import PROTO_UDP, make_packet
from repro.net.structs import skb_truesize
from repro.sim.kernel import Kernel


def make_victim(**kwargs):
    k = Kernel(seed=13, phys_mb=256, boot_jitter_pages=0,
               boot_jitter_blocks=0, **kwargs)
    nic = k.add_nic("eth0")
    dev = MaliciousDevice(k.iommu, "eth0",
                          AttackerKnowledge.from_public_build(k.image))
    return k, nic, dev


def spoof(i=0):
    return make_packet(dst_ip=0x0A00_0001, dst_port=9999,
                       proto=PROTO_UDP, flow_id=0x100 + i,
                       payload=b"\x00" * 32)


def test_neighbor_iova_arithmetic():
    """Byte offsets re-base onto a neighbour's IOVA only when the byte
    falls inside pages the neighbour's buffer touches."""
    truesize = 1856
    # neighbour starts truesize below the target, buffer at offset
    # 0x180 into its first IOVA page
    neighbor = RingNeighbor(iova=0x10000180, start_delta=-truesize,
                            truesize=truesize)
    # target byte 0 = neighbour byte truesize: position 0x180+1856
    assert neighbor.iova_for(0) == 0x10000180 + truesize
    # far beyond the neighbour's mapped pages -> None
    assert neighbor.iova_for(2 * 4096) is None


def test_deferred_window_is_path_ii():
    k, nic, dev = make_victim(iommu_mode="deferred")
    window = open_rx_window(k, nic, dev, spoof())
    assert window.original_valid
    path, _iova = window.resolve(0, 8)
    assert path == "ii"
    k.stack.process_backlog()


def test_strict_invalidates_original_but_neighbors_remain():
    k, nic, dev = make_victim(iommu_mode="strict")
    found = []
    for i in range(6):
        window = open_rx_window(k, nic, dev, spoof(i))
        resolved = window.resolve(skb_truesize(nic.rx_buf_size) - 320, 8)
        if resolved is not None:
            found.append(resolved[0])
        k.stack.process_backlog()
    assert found, "some slot should be reachable via a neighbour"
    assert set(found) == {"iii"}


def test_window_write_goes_through_iommu():
    k, nic, dev = make_victim()
    window = open_rx_window(k, nic, dev, spoof())
    writes_before = dev.dma_writes
    window.write(64, b"payload")
    assert dev.dma_writes > writes_before
    k.stack.process_backlog()


def test_window_write_unreachable_raises():
    k, nic, dev = make_victim(iommu_mode="strict")
    window = open_rx_window(k, nic, dev, spoof())
    window.original_valid = False
    window.neighbors = []
    with pytest.raises(AttackFailed):
        window.write(0, b"x")
    k.stack.process_backlog()


def test_window_expires_at_flush():
    k, nic, dev = make_victim(iommu_mode="deferred")
    window = open_rx_window(k, nic, dev, spoof())
    assert window.can_write_range(64, 8)
    k.advance_time_ms(11.0)
    # after the global flush neither the stale entry nor (necessarily)
    # a neighbour re-based path covers byte 64 of a consumed buffer
    path = window.resolve(64, 8)
    assert path is None or path[0] == "iii"
    k.stack.process_backlog()


def test_skb_first_order_gives_path_i():
    """Figure 7 path (i): the i40e-style driver leaves the original
    mapping live while the shared info is already initialized."""
    k = Kernel(seed=13, phys_mb=256)
    nic = k.add_nic("eth0", unmap_order="skb_first")
    dev = MaliciousDevice(k.iommu, "eth0",
                          AttackerKnowledge.from_public_build(k.image))
    observed = []

    def race(skb, desc):
        window = BufferWriteWindow(dev, desc.iova,
                                   skb_truesize(nic.rx_buf_size),
                                   mapping_live=True)
        observed.append(window.resolve(0, 8))

    nic.rx_race_hook = race
    nic.device_receive(spoof())
    nic.napi_poll()
    k.stack.process_backlog()
    assert observed and observed[0][0] == "i"


def test_ring_window_builds_neighbors():
    k, nic, dev = make_victim()
    pairs = [(0x8000_0000, 1856), (0x7000_0000, 1856),
             (0x6000_0000, 1856)]
    window = ring_window(dev, pairs, 0)
    assert window.original_iova == 0x8000_0000
    deltas = {n.start_delta for n in window.neighbors}
    assert deltas == {-1856, -2 * 1856}


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 4095), st.integers(64, 4096),
       st.integers(0, 8192))
def test_property_neighbor_rebase_bounds(in_page, truesize, offset):
    """iova_for never reaches outside the neighbour's mapped pages."""
    neighbor = RingNeighbor(iova=0x5000_0000 + in_page,
                            start_delta=-truesize, truesize=truesize)
    result = neighbor.iova_for(offset)
    if result is not None:
        nr_pages = (in_page + truesize - 1) // 4096 + 1
        base = 0x5000_0000
        assert base <= result < base + nr_pages * 4096
